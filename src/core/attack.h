// Adversarial models: local tampering of scheduling solutions (§IV-A,
// "second" property — resistance against tampering).
//
// Two complementary tools:
//
//  * perturbSchedule — a concrete adversary that repeatedly moves random
//    operations to other feasible steps (honouring the *functional*
//    dependences only; the adversary cannot see the watermark's temporal
//    edges).  Running detection after increasing perturbation budgets
//    yields the watermark-survival curve.
//
//  * the analytic tamper model behind the paper's 100k-op example: if a
//    fraction f of operations have their execution order altered, a
//    watermark edge survives with probability s = (1−f)², and the attacker
//    erases ALL K edges with probability (1−s)^K.  The paper's numbers
//    (alter ≥31,729 pairs ≈ 63% of a 100,000-op solution for a 1e−6 erase
//    chance at K = 100) fall out of exactly this model.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cdfg/graph.h"
#include "sched/latency.h"
#include "sched/schedule.h"

namespace locwm::wm {

/// Structural tampering moves against a published (or intercepted marked)
/// *design* — the adversary of the differential verifier (`locwm diff`,
/// src/check/differ.h).  Each kind maps onto a LW7xx diagnostic family:
/// node-set edits (LW701), re-kinding (LW702), dependence edits (LW703),
/// and temporal-edge edits (LW705/LW707).
enum class MutationKind : std::uint8_t {
  kAddOperation = 0,     ///< insert a new operation consuming a value
  kDeleteOperation = 1,  ///< remove a real operation and its edges
  kChangeOpKind = 2,     ///< re-kind a real operation
  kAddDataEdge = 3,      ///< add a forward data dependence
  kDeleteDataEdge = 4,   ///< remove a data dependence
  kRedirectEdge = 5,     ///< move a data edge to another consumer
  kDeleteTemporalEdge = 6,  ///< strip one watermark constraint
  kAddTemporalEdge = 7,     ///< forge an extra constraint
};

/// Number of distinct MutationKind values; dense in [0, count).
inline constexpr std::size_t kMutationKindCount = 8;

/// Stable mnemonic ("add-operation", "delete-temporal-edge", ...).
[[nodiscard]] std::string_view mutationKindName(MutationKind kind) noexcept;

/// Result of one structural mutation.
struct MutationOutcome {
  cdfg::Cdfg design;
  /// False when the graph offers no eligible target (e.g. deleting a
  /// temporal edge from a design that has none); `design` is then an
  /// unmodified copy.
  bool applied = false;
  /// Human-readable account of what was changed.
  std::string description;
};

/// Applies one structural mutation to a copy of `g`.  Deterministic in
/// `seed`; the result is always acyclic (forward edges are inserted along
/// the topological order).  The Cdfg API has no removal, so deleting
/// mutations rebuild the graph.
[[nodiscard]] MutationOutcome mutateDesign(const cdfg::Cdfg& g,
                                           MutationKind kind,
                                           std::uint64_t seed);

/// Options of the perturbation adversary.
struct PerturbOptions {
  /// Number of move attempts.
  std::size_t moves = 100;
  /// Deterministic seed of the adversary's randomness.
  std::uint64_t seed = 1;
  sched::LatencyModel latency = sched::LatencyModel::unit();
  /// When set, moves never extend the schedule beyond this step count
  /// (an adversary unwilling to pay latency for the attack).
  std::uint32_t max_makespan = 0;  // 0 = unbounded
};

/// Result of a perturbation run.
struct PerturbResult {
  sched::Schedule schedule;
  std::size_t attempted = 0;
  /// Moves that actually changed a start step.
  std::size_t changed = 0;
  /// Distinct operations whose step changed at least once.
  std::size_t ops_touched = 0;
};

/// Randomly re-schedules operations of `g` starting from `s`, respecting
/// data/control edges only (the published design carries no temporal
/// edges).  Deterministic in `options.seed`.
[[nodiscard]] PerturbResult perturbSchedule(const cdfg::Cdfg& g,
                                            const sched::Schedule& s,
                                            const PerturbOptions& options);

/// Probability one watermark edge survives when a fraction `f` of the
/// operations had their order altered: (1−f)².
[[nodiscard]] double edgeSurvivalProbability(double f);

/// Probability an attacker altering `pairs` node pairs (2·pairs distinct
/// ops) of an `n_ops` solution erases all `k_edges` watermark edges.
[[nodiscard]] double eraseProbability(std::size_t n_ops, std::size_t k_edges,
                                      std::size_t pairs);

/// Minimum number of altered pairs for the erase probability to reach
/// `target` (the paper's headline: n=100000, K=100, target=1e−6 →
/// ≈31.7k pairs, 63% of the solution).
[[nodiscard]] std::size_t requiredAlterations(std::size_t n_ops,
                                              std::size_t k_edges,
                                              double target);

}  // namespace locwm::wm
