#include "core/reg_wm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cdfg/error.h"
#include "core/pass_audit.h"
#include "obs/obs.h"
#include "regbind/lifetime.h"
#include "rt/rt.h"

namespace locwm::wm {

using cdfg::NodeId;

std::optional<RegEmbedResult> RegisterWatermarker::embed(
    const cdfg::Cdfg& g, const sched::Schedule& s, const RegWmParams& params,
    std::size_t index) const {
  LOCWM_OBS_SPAN("core.reg_wm.embed");
  const std::string context = "reg-wm/" + std::to_string(index);
  crypto::KeyedBitstream root_bits(signature_, context + "/root");

  const regbind::LifetimeTable table =
      regbind::computeLifetimes(g, s, params.latency);

  const LocalityDeriver deriver(g);
  const std::vector<NodeId> roots = deriver.candidateRoots();
  if (roots.empty()) {
    return std::nullopt;
  }

  for (std::size_t attempt = 0; attempt < params.max_root_retries; ++attempt) {
    const NodeId root = roots[root_bits.below(roots.size())];
    crypto::KeyedBitstream carve_bits(signature_, context + "/carve");
    std::optional<Locality> loc =
        deriver.derive(root, params.locality, carve_bits);
    if (!loc) {
      continue;
    }

    // Usable values: locality members that produce a register value.
    std::vector<std::uint32_t> value_ranks;
    for (std::uint32_t r = 0; r < loc->nodes.size(); ++r) {
      if (table.produces(loc->nodes[r])) {
        value_ranks.push_back(r);
      }
    }
    if (value_ranks.size() < params.min_values) {
      continue;
    }

    const std::size_t k = params.k_explicit.value_or(std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               params.k_fraction *
               static_cast<double>(value_ranks.size())))));

    // Union-find over ranks so transitive alias groups stay conflict-free.
    std::vector<std::uint32_t> parent(loc->nodes.size());
    std::iota(parent.begin(), parent.end(), 0u);
    auto find = [&](std::uint32_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    auto groupCompatible = [&](std::uint32_t ra, std::uint32_t rb) {
      // Every member of ra's group must be lifetime-disjoint from every
      // member of rb's group.
      const std::uint32_t pa = find(ra);
      const std::uint32_t pb = find(rb);
      for (const std::uint32_t x : value_ranks) {
        if (find(x) != pa) {
          continue;
        }
        for (const std::uint32_t y : value_ranks) {
          if (find(y) != pb) {
            continue;
          }
          if (table.of(loc->nodes[x]).overlaps(table.of(loc->nodes[y]))) {
            return false;
          }
        }
      }
      return true;
    };

    crypto::KeyedBitstream encode_bits(signature_, context + "/encode");
    RegEmbedResult result;
    result.roots_tried = attempt + 1;

    std::vector<std::uint32_t> pool = value_ranks;
    while (result.certificate.pairs.size() < k && pool.size() >= 2) {
      const std::size_t idx = encode_bits.below(pool.size());
      const std::uint32_t ra = pool[idx];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));

      std::vector<std::uint32_t> partners;
      for (const std::uint32_t rb : value_ranks) {
        if (rb == ra || find(rb) == find(ra)) {
          continue;
        }
        if (groupCompatible(ra, rb)) {
          partners.push_back(rb);
        }
      }
      if (partners.empty()) {
        continue;
      }
      const std::uint32_t rb = partners[encode_bits.below(partners.size())];
      parent[find(ra)] = find(rb);
      result.certificate.pairs.push_back(RankConstraint{ra, rb});
      result.aliases.push_back({loc->nodes[ra], loc->nodes[rb]});
    }
    if (result.certificate.pairs.empty()) {
      continue;
    }

    result.certificate.context = context;
    result.certificate.locality_params = params.locality;
    result.certificate.shape = loc->shape;
    for (std::uint32_t r = 0; r < loc->nodes.size(); ++r) {
      if (loc->nodes[r] == loc->root) {
        result.certificate.root_rank = r;
      }
    }
    result.locality = std::move(*loc);
    LOCWM_OBS_COUNT("core.reg_wm.embeds", 1);
    LOCWM_OBS_COUNT("core.reg_wm.pairs_encoded",
                    result.certificate.pairs.size());
    auditCertificate("reg-wm/embed", result.certificate);
    return result;
  }
  LOCWM_OBS_COUNT("core.reg_wm.embed_failures", 1);
  return std::nullopt;
}

RegDetectResult RegisterWatermarker::detect(
    const cdfg::Cdfg& suspect, const regbind::LifetimeTable& table,
    const regbind::Binding& binding, const RegCertificate& certificate) const {
  LOCWM_OBS_SPAN("core.reg_wm.detect");
  auditCertificate("reg-wm/detect", certificate);
  RegDetectResult best;
  best.total = certificate.pairs.size();
  best.root = NodeId::invalid();

  const cdfg::OpKind root_kind =
      certificate.shape.node(NodeId(certificate.root_rank)).kind;
  const LocalityDeriver deriver(suspect);
  // Per-root locality re-derivation is independent; fold the per-root
  // shared-register counts serially in root order so the winning root (and
  // every tie-break) matches the serial scan exactly.
  const std::vector<NodeId> roots = deriver.candidateRoots();
  std::vector<std::optional<std::size_t>> shared_at(roots.size());
  rt::parallel_for(0, roots.size(), /*grain=*/1, [&](std::size_t i) {
    const NodeId root = roots[i];
    if (suspect.node(root).kind != root_kind) {
      return;
    }
    crypto::KeyedBitstream carve_bits(signature_,
                                      certificate.context + "/carve");
    const std::optional<Locality> loc =
        deriver.derive(root, certificate.locality_params, carve_bits);
    if (!loc || !shapeEquals(loc->shape, certificate.shape)) {
      return;
    }
    std::size_t shared = 0;
    for (const RankConstraint& c : certificate.pairs) {
      const NodeId a = loc->nodes[c.before_rank];
      const NodeId b = loc->nodes[c.after_rank];
      if (table.produces(a) && table.produces(b) &&
          binding.of(table, a) == binding.of(table, b)) {
        ++shared;
      }
    }
    shared_at[i] = shared;
  });
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (!shared_at[i]) {
      continue;
    }
    ++best.shape_matches;
    if (*shared_at[i] > best.shared || !best.root.isValid()) {
      best.shared = *shared_at[i];
      best.root = roots[i];
    }
  }
  best.found =
      best.root.isValid() && best.shared == best.total && best.total > 0;
  return best;
}

double approxBindingLog10Pc(std::size_t pairs, std::uint32_t register_count) {
  detail::check(register_count > 0, "approxBindingLog10Pc: no registers");
  if (register_count == 1) {
    return 0.0;  // everything shares trivially
  }
  return -static_cast<double>(pairs) *
         std::log10(static_cast<double>(register_count));
}

}  // namespace locwm::wm
