// Local watermarking of register-binding (coloring) solutions.
//
// The paper presents local watermarking as a *generic* IPP methodology and
// sketches the coloring instantiation in §III: "while uniquely marking a
// solution to graph coloring, a local watermark is embedded in a random
// subgraph".  Register binding is behavioral synthesis's coloring task, so
// this module instantiates the generic protocol for it:
//
//   * domain selection/identification: identical to the scheduling
//     protocol (core/locality.h);
//   * constraint encoding: the keyed bitstream picks K pairs of
//     *compatible* (lifetime-disjoint) values inside the locality and
//     constrains each pair to SHARE one register — the binding-domain
//     analogue of a temporal edge: invisible locally, statistically
//     improbable globally (a random binder co-locates a compatible pair
//     with probability ≈ 1/R);
//   * detection: re-derive the locality in the suspect and check the
//     pairs share registers in the suspect's binding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cdfg/graph.h"
#include "core/locality.h"
#include "core/sched_wm.h"  // RankConstraint
#include "crypto/bitstream.h"
#include "regbind/binding.h"
#include "sched/schedule.h"

namespace locwm::wm {

/// Embedding parameters of the register-binding watermark.
struct RegWmParams {
  LocalityParams locality;
  /// Number of alias constraints K as a fraction of the locality's values.
  double k_fraction = 0.25;
  std::optional<std::size_t> k_explicit;
  /// Minimum usable value count in a locality.
  std::size_t min_values = 4;
  std::size_t max_root_retries = 128;
  sched::LatencyModel latency = sched::LatencyModel::unit();
};

/// Certificate of a register-binding watermark: locality fingerprint plus
/// the constrained pairs as canonical ranks.
struct RegCertificate {
  std::string context;
  LocalityParams locality_params;
  cdfg::Cdfg shape;
  std::uint32_t root_rank = 0;
  std::vector<RankConstraint> pairs;  ///< ranks that share a register
};

/// Result of embedding.
struct RegEmbedResult {
  RegCertificate certificate;
  Locality locality;
  /// Alias constraints in source coordinates — pass to
  /// regbind::BindOptions::aliases.
  std::vector<regbind::AliasPair> aliases;
  std::size_t roots_tried = 0;
};

/// Detection outcome.
struct RegDetectResult {
  bool found = false;
  cdfg::NodeId root;
  std::size_t shared = 0;  ///< pairs sharing a register in the suspect
  std::size_t total = 0;
  std::size_t shape_matches = 0;
};

/// Embeds + detects register-binding watermarks for one author signature.
class RegisterWatermarker {
 public:
  explicit RegisterWatermarker(crypto::AuthorSignature signature)
      : signature_(std::move(signature)) {}

  /// Selects alias constraints for design `g` scheduled by `s`.  The graph
  /// is not mutated; apply the returned aliases when binding.
  [[nodiscard]] std::optional<RegEmbedResult> embed(
      const cdfg::Cdfg& g, const sched::Schedule& s,
      const RegWmParams& params = {}, std::size_t index = 0) const;

  /// Scans a suspect design + its lifetime table + register binding.
  [[nodiscard]] RegDetectResult detect(
      const cdfg::Cdfg& suspect, const regbind::LifetimeTable& table,
      const regbind::Binding& binding,
      const RegCertificate& certificate) const;

 private:
  crypto::AuthorSignature signature_;
};

/// Coincidence likelihood of a binding watermark: each compatible pair is
/// co-located by an oblivious binder with probability ≈ 1/R, so
/// Pc ≈ (1/R)^K (log10 domain).
[[nodiscard]] double approxBindingLog10Pc(std::size_t pairs,
                                          std::uint32_t register_count);

}  // namespace locwm::wm
