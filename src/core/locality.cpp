#include "core/locality.h"

#include <algorithm>
#include <unordered_map>

#include "cdfg/error.h"
#include "cdfg/subgraph.h"
#include "obs/obs.h"
#include "rt/rt.h"

namespace locwm::wm {

using cdfg::NodeId;

bool shapeEquals(const cdfg::Cdfg& a, const cdfg::Cdfg& b) {
  if (a.nodeCount() != b.nodeCount() || a.edgeCount() != b.edgeCount()) {
    return false;
  }
  // Direct table walks: this runs once per shape-matching candidate root
  // during detection scans, so the allNodes()/allEdges() id vectors the
  // convenience API allocates are worth avoiding.
  const std::vector<cdfg::Node>& an = a.nodes();
  const std::vector<cdfg::Node>& bn = b.nodes();
  for (std::size_t i = 0; i < an.size(); ++i) {
    if (an[i].kind != bn[i].kind) {
      return false;
    }
  }
  auto edgeSet = [](const cdfg::Cdfg& g) {
    std::vector<std::tuple<std::uint32_t, std::uint32_t, cdfg::EdgeKind>> set;
    set.reserve(g.edgeCount());
    for (const cdfg::Edge& ed : g.edges()) {
      set.emplace_back(ed.src.value(), ed.dst.value(), ed.kind);
    }
    std::sort(set.begin(), set.end());
    return set;
  };
  return edgeSet(a) == edgeSet(b);
}

bool Locality::sameShape(const Locality& other) const {
  return shapeEquals(shape, other.shape);
}

namespace {

/// True for kinds the identification treats as wires, not operations:
/// pseudo-ops (the port boundary) and register-to-register copies.  Copy
/// transparency makes the cheapest structural attack — splitting edges
/// with no-op moves — a no-op against detection.
bool isTransparentKind(cdfg::OpKind kind) {
  return cdfg::isPseudoOp(kind) || kind == cdfg::OpKind::kCopy;
}

/// Copy-transparent walk shared by realPreds/realSuccs: collects real
/// operations, expands copies, stops at pseudo-ops.  `seen` membership is
/// a linear scan — the walks touch a handful of local nodes, so a small
/// vector beats the O(graph) bitmap the old builder-based helpers zeroed
/// on every call.
template <typename Expand>
std::vector<NodeId> realNeighbourWalk(const cdfg::CsrView& v, NodeId start,
                                      Expand&& neighbours) {
  std::vector<NodeId> out;
  std::vector<NodeId> seen;
  std::vector<NodeId> stack;
  {
    const auto first = neighbours(start);
    stack.assign(first.begin(), first.end());
  }
  while (!stack.empty()) {
    const NodeId p = stack.back();
    stack.pop_back();
    if (std::find(seen.begin(), seen.end(), p) != seen.end()) {
      continue;
    }
    seen.push_back(p);
    const cdfg::OpKind kind = v.kind(p);
    if (cdfg::isPseudoOp(kind)) {
      continue;
    }
    if (kind == cdfg::OpKind::kCopy) {
      for (const NodeId q : neighbours(p)) {
        stack.push_back(q);
      }
      continue;
    }
    out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Real-operation predecessors (via data/control edges), walking *through*
/// copy chains, deduplicated, ascending by id.  Pseudo-ops terminate the
/// walk (they are the traversal boundary).
std::vector<NodeId> realPreds(const cdfg::CsrView& v, NodeId n) {
  return realNeighbourWalk(v, n, [&](NodeId x) {
    return v.predecessors(x, cdfg::EdgeSel::kDataControl);
  });
}

/// Calls f(dst, kind) for every data/control edge leaving `n`, in edge
/// *insertion* order — merging the kind-grouped CSR segments by edge id
/// reproduces exactly the order the builder's outEdges() walk visits, so
/// graphs built from this traversal have identical edge numbering.
template <typename F>
void forEachDataControlOut(const cdfg::CsrView& v, NodeId n, F&& f) {
  const auto dn = v.successors(n, cdfg::EdgeSel::kData);
  const auto de = v.outEdges(n, cdfg::EdgeSel::kData);
  const auto cn = v.successors(n, cdfg::EdgeSel::kControl);
  const auto ce = v.outEdges(n, cdfg::EdgeSel::kControl);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < dn.size() || j < cn.size()) {
    if (j >= cn.size() ||
        (i < dn.size() && de[i].value() < ce[j].value())) {
      f(dn[i], cdfg::EdgeKind::kData);
      ++i;
    } else {
      f(cn[j], cdfg::EdgeKind::kControl);
      ++j;
    }
  }
}

/// Builds the *contracted* identification graph over `members` (sorted,
/// all non-transparent): direct edges keep their kind; edges that pass
/// through copy chains are contracted to data edges, preserving path
/// multiplicity (x + x through a copy stays a double edge).  All
/// identification — ordering, carving, shapes — happens on this graph, so
/// splitting edges with copies cannot perturb detection.
cdfg::Cdfg buildContracted(const cdfg::CsrView& view,
                           const std::vector<NodeId>& members,
                           cdfg::NodeMap* map_out) {
  cdfg::Cdfg c;
  cdfg::NodeMap map;
  map.reserve(members.size());
  for (const NodeId v : members) {
    map.emplace(v, c.addNode(view.kind(v)));
  }
  for (const NodeId v : members) {
    // forEachDataControlOut replays the builder's edge-insertion order,
    // so the contracted graph's edge numbering is identical to what the
    // pre-CSR implementation produced.
    forEachDataControlOut(view, v, [&](NodeId dst, cdfg::EdgeKind kind) {
      const auto direct = map.find(dst);
      if (direct != map.end()) {
        c.addEdge(map.at(v), direct->second, kind);
        return;
      }
      if (view.kind(dst) != cdfg::OpKind::kCopy) {
        return;  // boundary (pseudo-op or outside the member set)
      }
      // Expand the copy chain, preserving multiplicity (no dedup).
      std::vector<NodeId> stack{dst};
      std::size_t guard = 0;
      while (!stack.empty() && ++guard < 4096) {
        const NodeId p = stack.back();
        stack.pop_back();
        forEachDataControlOut(view, p, [&](NodeId q, cdfg::EdgeKind) {
          if (view.kind(q) == cdfg::OpKind::kCopy) {
            stack.push_back(q);
          } else if (const auto it = map.find(q); it != map.end()) {
            c.addEdge(map.at(v), it->second, cdfg::EdgeKind::kData);
          }
        });
      }
    });
  }
  if (map_out != nullptr) {
    *map_out = std::move(map);
  }
  return c;
}

/// Real-operation successors with the same copy transparency.
std::vector<NodeId> realSuccs(const cdfg::CsrView& v, NodeId n) {
  return realNeighbourWalk(v, n, [&](NodeId x) {
    return v.successors(x, cdfg::EdgeSel::kDataControl);
  });
}

}  // namespace

std::optional<Locality> LocalityDeriver::derive(
    NodeId root, const LocalityParams& params,
    crypto::KeyedBitstream& bits) const {
  LOCWM_OBS_SPAN("core.locality.derive");
  LOCWM_OBS_COUNT("core.locality.derive_calls", 1);
  const cdfg::CsrView& view = csr_;
  if (isTransparentKind(view.kind(root))) {
    LOCWM_OBS_COUNT("core.locality.rejected", 1);
    return std::nullopt;
  }

  auto realNeighbours = [&](NodeId v, bool undirected) {
    std::vector<NodeId> out = realPreds(view, v);
    if (undirected) {
      const std::vector<NodeId> succs = realSuccs(view, v);
      out.insert(out.end(), succs.begin(), succs.end());
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
    }
    return out;
  };
  auto ball = [&](std::uint32_t radius, bool undirected) {
    std::vector<NodeId> members;
    std::vector<bool> seen(view.nodeCount(), false);
    std::vector<NodeId> frontier{root};
    seen[root.value()] = true;
    members.push_back(root);
    for (std::uint32_t d = 0; d < radius && !frontier.empty(); ++d) {
      std::vector<NodeId> next;
      for (const NodeId v : frontier) {
        for (const NodeId p : realNeighbours(v, undirected)) {
          if (!seen[p.value()]) {
            seen[p.value()] = true;
            next.push_back(p);
          }
        }
      }
      std::sort(next.begin(), next.end());
      members.insert(members.end(), next.begin(), next.end());
      frontier = std::move(next);
    }
    std::sort(members.begin(), members.end());
    return members;
  };

  // --- Step 1a: the fanin tree To of max-distance Δ, real ops only — the
  // set the carve may select from (the paper's To).
  const std::vector<NodeId> to_nodes = ball(params.max_distance,
                                            /*undirected=*/false);
  if (to_nodes.size() < params.min_size) {
    LOCWM_OBS_COUNT("core.locality.rejected", 1);
    return std::nullopt;
  }
  // --- Step 1b: the *identification context*: the undirected ball of the
  // same radius.  Fanin-only context cannot tell symmetric taps apart
  // (their difference lies in who consumes them); the undirected ball is
  // still root-anchored and structural, so the detector re-derives it
  // identically.  Pseudo-ops (the design's port boundary) are never
  // crossed, keeping the context invariant under host embedding.
  const std::vector<NodeId> ctx_nodes = ball(params.max_distance,
                                             /*undirected=*/true);

  // --- Step 2: canonical ordering of the context's induced subgraph. ---
  // Automorphic nodes (tied ranks) cannot be identified reproducibly on a
  // re-indexed copy, so they are barred from the carve; the root itself
  // must be uniquely identified.
  cdfg::NodeMap to_map;  // graph -> contracted (context coordinates)
  const cdfg::Cdfg to_graph = buildContracted(view, ctx_nodes, &to_map);
  const cdfg::StructuralAnalysis to_analysis(to_graph);
  const cdfg::NodeOrdering ordering = cdfg::computeOrdering(to_analysis);
  // rank_of[induced node value] = canonical rank; kTied marks automorphic
  // nodes excluded from the locality.
  constexpr std::uint32_t kTied = 0xFFFFFFFFu;
  std::vector<std::uint32_t> rank_of(to_graph.nodeCount(), kTied);
  for (std::size_t i = 0; i < ordering.ordered.size(); ++i) {
    const bool tied_prev =
        i > 0 && ordering.ranks[i] == ordering.ranks[i - 1];
    const bool tied_next = i + 1 < ordering.ranks.size() &&
                           ordering.ranks[i] == ordering.ranks[i + 1];
    if (!tied_prev && !tied_next) {
      rank_of[ordering.ordered[i].value()] = ordering.ranks[i];
    }
  }
  const NodeId root_in_to = to_map.at(root);
  if (rank_of[root_in_to.value()] == kTied) {
    LOCWM_OBS_COUNT("core.locality.rejected", 1);
    return std::nullopt;
  }

  // --- Step 3: keyed breadth-first carve of T ⊆ To. ---
  std::vector<bool> in_to(to_graph.nodeCount(), false);
  for (const NodeId v : to_nodes) {
    in_to[to_map.at(v).value()] = true;
  }
  const NodeId root_local = root_in_to;
  std::vector<bool> carved(to_graph.nodeCount(), false);
  carved[root_local.value()] = true;
  std::vector<NodeId> frontier{root_local};
  while (!frontier.empty()) {
    // Deterministic frontier order: ascending canonical rank.
    std::sort(frontier.begin(), frontier.end(), [&](NodeId a, NodeId b) {
      return rank_of[a.value()] < rank_of[b.value()];
    });
    std::vector<NodeId> next;
    for (const NodeId v : frontier) {
      // to_analysis already lowered the contracted graph — reuse its view.
      std::vector<NodeId> preds = realPreds(to_analysis.csr(), v);
      // Only fanin-tree members are selectable, and automorphic
      // predecessors are invisible to the carve.
      std::erase_if(preds, [&](NodeId p) {
        return !in_to[p.value()] || rank_of[p.value()] == kTied;
      });
      std::sort(preds.begin(), preds.end(), [&](NodeId a, NodeId b) {
        return rank_of[a.value()] < rank_of[b.value()];
      });
      if (preds.empty()) {
        continue;
      }
      // At least one input is always included...
      const std::size_t keep = bits.below(preds.size());
      // ...each remaining input is excluded with a fixed probability.
      for (std::size_t i = 0; i < preds.size(); ++i) {
        bool include;
        if (i == keep) {
          include = true;
        } else {
          include = !bits.chance(params.exclude_prob_256, 256);
        }
        if (include && !carved[preds[i].value()]) {
          carved[preds[i].value()] = true;
          next.push_back(preds[i]);
        }
      }
    }
    frontier = std::move(next);
  }

  // --- Step 4: assemble the locality in canonical-rank order. ---
  std::vector<NodeId> carved_local;  // induced-graph ids, by ascending rank
  for (const NodeId v : ordering.ordered) {
    if (carved[v.value()]) {
      carved_local.push_back(v);
    }
  }
  if (carved_local.size() < params.min_size) {
    LOCWM_OBS_COUNT("core.locality.rejected", 1);
    return std::nullopt;
  }

  // Map induced ids back to source-graph ids.
  std::unordered_map<NodeId, NodeId> inverse;  // induced -> graph
  for (const auto& [orig, local] : to_map) {
    inverse.emplace(local, orig);
  }

  Locality result;
  result.root = root;
  result.nodes.reserve(carved_local.size());
  for (const NodeId v : carved_local) {
    result.nodes.push_back(inverse.at(v));
  }
  // Shape: induced subgraph of T with node id == rank.  inducedSubgraph
  // numbers nodes by position in the input vector, so passing the nodes in
  // rank order yields exactly the rank numbering.  Temporal edges (from
  // previously embedded watermarks) are stripped: the published design
  // carries none, and the fingerprint must match it.
  result.shape =
      cdfg::inducedSubgraph(to_graph, carved_local).stripTemporalEdges();
  // Scrub labels: shape identity must not leak source names.
  for (const NodeId v : result.shape.allNodes()) {
    result.shape.setNodeName(v, {});
  }
  LOCWM_OBS_COUNT("core.locality.accepted", 1);
  LOCWM_OBS_COUNT("core.locality.nodes_carved", result.nodes.size());
  return result;
}

std::optional<Locality> LocalityDeriver::wholeDesign(
    std::size_t minSize) const {
  std::vector<NodeId> real;
  const std::size_t n = csr_.nodeCount();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v(static_cast<std::uint32_t>(i));
    if (!isTransparentKind(csr_.kind(v))) {
      real.push_back(v);
    }
  }
  if (real.size() < minSize) {
    return std::nullopt;
  }
  cdfg::NodeMap map;
  const cdfg::Cdfg sub = buildContracted(csr_, real, &map);
  const cdfg::StructuralAnalysis analysis(sub);
  const cdfg::NodeOrdering ordering = cdfg::computeOrdering(analysis);

  std::unordered_map<NodeId, NodeId> inverse;  // induced -> graph
  for (const auto& [orig, local] : map) {
    inverse.emplace(local, orig);
  }
  std::vector<NodeId> untied_local;
  for (std::size_t i = 0; i < ordering.ordered.size(); ++i) {
    const bool tied_prev =
        i > 0 && ordering.ranks[i] == ordering.ranks[i - 1];
    const bool tied_next = i + 1 < ordering.ranks.size() &&
                           ordering.ranks[i] == ordering.ranks[i + 1];
    if (!tied_prev && !tied_next) {
      untied_local.push_back(ordering.ordered[i]);
    }
  }
  if (untied_local.size() < minSize) {
    return std::nullopt;
  }
  Locality result;
  result.root = NodeId::invalid();
  for (const NodeId v : untied_local) {
    result.nodes.push_back(inverse.at(v));
  }
  result.shape =
      cdfg::inducedSubgraph(sub, untied_local).stripTemporalEdges();
  for (const NodeId v : result.shape.allNodes()) {
    result.shape.setNodeName(v, {});
  }
  return result;
}

std::array<std::uint32_t, cdfg::kOpKindCount> LocalityDeriver::faninKindCounts(
    NodeId root, std::uint32_t radius) const {
  std::array<std::uint32_t, cdfg::kOpKindCount> counts{};
  if (isTransparentKind(csr_.kind(root))) {
    return counts;
  }
  // Mirror of derive()'s Step 1a ball(radius, /*undirected=*/false): a
  // breadth-first walk over copy-transparent real predecessors.  Membership
  // is all that matters here, so the per-level sorting derive() does for
  // determinism of *order* is unnecessary — the counted set is identical.
  std::vector<bool> seen(csr_.nodeCount(), false);
  std::vector<NodeId> frontier{root};
  seen[root.value()] = true;
  counts[static_cast<std::size_t>(csr_.kind(root))] += 1;
  for (std::uint32_t d = 0; d < radius && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (const NodeId v : frontier) {
      for (const NodeId p : realPreds(csr_, v)) {
        if (!seen[p.value()]) {
          seen[p.value()] = true;
          counts[static_cast<std::size_t>(csr_.kind(p))] += 1;
          next.push_back(p);
        }
      }
    }
    frontier = std::move(next);
  }
  return counts;
}

std::array<std::uint32_t, cdfg::kOpKindCount> LocalityDeriver::realKindCounts()
    const {
  std::array<std::uint32_t, cdfg::kOpKindCount> counts{};
  const std::size_t n = csr_.nodeCount();
  for (std::size_t i = 0; i < n; ++i) {
    const cdfg::OpKind kind = csr_.kind(NodeId(static_cast<std::uint32_t>(i)));
    if (!isTransparentKind(kind)) {
      counts[static_cast<std::size_t>(kind)] += 1;
    }
  }
  return counts;
}

std::vector<NodeId> LocalityDeriver::candidateRoots() const {
  std::vector<NodeId> roots;
  const std::size_t n = csr_.nodeCount();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v(static_cast<std::uint32_t>(i));
    if (isTransparentKind(csr_.kind(v))) {
      continue;
    }
    if (!realPreds(csr_, v).empty()) {
      roots.push_back(v);
    }
  }
  return roots;
}

std::vector<ShapeHit> scanShapeMatches(const LocalityDeriver& deriver,
                                       const crypto::AuthorSignature& signature,
                                       const std::string& context,
                                       const LocalityParams& params,
                                       const cdfg::Cdfg& shape,
                                       std::optional<cdfg::OpKind> root_kind,
                                       const std::vector<NodeId>& roots) {
  LOCWM_OBS_SPAN("core.locality.shape_scan");
  LOCWM_OBS_COUNT("core.locality.shape_scan_roots", roots.size());
  // Each slot is written by exactly one task; the serial fold below
  // preserves `roots` order regardless of scheduling.
  std::vector<std::optional<ShapeHit>> found(roots.size());
  rt::parallel_for(0, roots.size(), /*grain=*/1, [&](std::size_t i) {
    const NodeId root = roots[i];
    if (root_kind.has_value() && deriver.csr().kind(root) != *root_kind) {
      return;
    }
    crypto::KeyedBitstream carve_bits(signature, context + "/carve");
    const std::optional<Locality> loc =
        deriver.derive(root, params, carve_bits);
    if (!loc || !shapeEquals(loc->shape, shape)) {
      return;
    }
    found[i] = ShapeHit{root, loc->nodes};
  });
  std::vector<ShapeHit> hits;
  for (std::optional<ShapeHit>& hit : found) {
    if (hit.has_value()) {
      hits.push_back(std::move(*hit));
    }
  }
  return hits;
}

}  // namespace locwm::wm
