// Likelihood of solution coincidence, Pc (§IV-A discussion, §IV-B).
//
// The strength of the proof of authorship is 1 − Pc, where Pc is the
// probability that an independent tool, given only the original
// specification, produces a solution that happens to satisfy the
// watermark's constraints.
//
//  * Scheduling, exact:      Pc = ΨW(T)/ΨN(T) — exhaustive schedule counts
//    over the locality subgraph with and without the temporal edges
//    (Fig. 3: 15/166).  Exponential; small localities only.
//  * Scheduling, approximate: Pc ≈ Π_i P[t_src < t_dst] with start times
//    uniform over the operations' [asap, alap] windows (the paper assumes
//    a Poisson spread and E[ΨW/ΨN] = 1/2; the window model subsumes that
//    and degrades to exactly 1/2 for same-window pairs).
//  * Template matching:       Pc ≈ Π_i 1/Solutions(m_i) (tm/solutions.h).
//
// Values span 1e−5 … 1e−27 and smaller, so everything is carried in
// log10 domain.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cdfg/graph.h"
#include "core/sched_wm.h"
#include "sched/enumeration.h"
#include "sched/timeframes.h"

namespace locwm::wm {

/// A Pc estimate in log10 domain (pc = 10^log10_pc).
struct PcEstimate {
  double log10_pc = 0;
  /// True when computed by exhaustive enumeration.
  bool exact = false;
  /// Diagnostics for exact estimates: the two schedule counts.
  std::uint64_t schedules_unconstrained = 0;
  std::uint64_t schedules_constrained = 0;

  [[nodiscard]] double pc() const;
  /// Proof of authorship 1 − Pc, reported as "nines": −log10(Pc).
  [[nodiscard]] double proofStrengthDigits() const { return -log10_pc; }
};

/// Exact Pc of a scheduling watermark by exhaustive enumeration over the
/// locality subgraph (shape + rank constraints from the certificate).
/// `deadline_slack` extra steps are granted beyond the locality's critical
/// path, mirroring the scheduling freedom of the surrounding design.
/// Throws Error when the enumeration budget is exceeded.
[[nodiscard]] PcEstimate exactSchedulingPc(
    const WatermarkCertificate& certificate, std::uint32_t deadline_slack = 1,
    std::uint64_t max_steps = 50'000'000);

/// A design carrying several watermarks proves authorship with the
/// *product* of the per-certificate Pc values (the localities are
/// disjoint by construction, so the coincidences are independent events).
struct AggregatePc {
  /// log10-sum of every successfully enumerated certificate, in
  /// certificate order.
  PcEstimate combined;
  /// Per-certificate estimates, aligned with the input; nullopt when that
  /// certificate's enumeration exceeded the budget.
  std::vector<std::optional<PcEstimate>> per_certificate;
  /// Number of nullopt entries above.
  std::size_t failed = 0;
};

/// Exact Pc of each certificate (independent enumerations, computed in
/// parallel) combined into one aggregate proof.  A certificate whose
/// enumeration exceeds `max_steps` is skipped and counted in `failed`
/// instead of aborting the whole aggregate.
[[nodiscard]] AggregatePc aggregateSchedulingPc(
    const std::vector<WatermarkCertificate>& certificates,
    std::uint32_t deadline_slack = 1, std::uint64_t max_steps = 50'000'000);

/// Approximate Pc of a set of temporal constraints in a full design:
/// per-edge window-uniform order probability, multiplied (log-summed).
/// `edges` are (before, after) node pairs in `g`'s coordinates; frames are
/// computed on `g` WITHOUT temporal edges (the unconstrained solution
/// space an independent tool faces).
[[nodiscard]] PcEstimate approxSchedulingPc(
    const cdfg::Cdfg& g, const std::vector<sched::ExtraEdge>& edges,
    const sched::LatencyModel& lat = sched::LatencyModel::unit(),
    std::optional<std::uint32_t> deadline = std::nullopt);

/// The window-uniform order probability P[t_a < t_b] for start windows
/// [a_lo, a_hi] and [b_lo, b_hi].  Exposed for tests and the tamper model.
[[nodiscard]] double orderProbability(std::uint32_t a_lo, std::uint32_t a_hi,
                                      std::uint32_t b_lo, std::uint32_t b_hi);

/// Template-matching Pc: Π 1/Solutions(m_i) given the per-matching
/// solution counts.
[[nodiscard]] PcEstimate templatePc(
    const std::vector<std::uint64_t>& solutions_per_matching);

/// Likelihood-ratio confidence of a (possibly partial) detection: the
/// log10 probability that a schedule drawn uniformly from the locality's
/// window model satisfies at least `satisfied` of the certificate's
/// constraints.  Small values mean the observation is hard to explain by
/// chance even when tampering broke some constraints — the quantitative
/// backing for "degraded but still damning" verdicts.
///
/// Computed over the certificate's shape with `deadline_slack` extra
/// steps, treating constraints as independent Bernoulli trials with the
/// per-edge window probabilities (a Poisson-binomial tail).
[[nodiscard]] double detectionConfidenceLog10(
    const WatermarkCertificate& certificate, std::size_t satisfied,
    std::uint32_t deadline_slack = 1);

}  // namespace locwm::wm
