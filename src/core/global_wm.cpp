#include "core/global_wm.h"

#include <algorithm>
#include <cmath>

#include "core/locality.h"
#include "sched/timeframes.h"

namespace locwm::wm {

using cdfg::NodeId;

namespace {

bool reachesGlobal(const cdfg::Cdfg& g, NodeId from, NodeId to) {
  if (from == to) {
    return true;
  }
  std::vector<bool> seen(g.nodeCount(), false);
  std::vector<NodeId> stack{from};
  seen[from.value()] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const NodeId s : g.successors(v, /*includeTemporal=*/true)) {
      if (s == to) {
        return true;
      }
      if (!seen[s.value()]) {
        seen[s.value()] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

}  // namespace

std::optional<SchedEmbedResult> GlobalWatermarker::embed(
    cdfg::Cdfg& g, const GlobalWmParams& params) const {
  const std::string context = "global-wm";
  const LocalityDeriver deriver(g);
  std::optional<Locality> loc = deriver.wholeDesign(4);
  if (!loc) {
    return std::nullopt;
  }

  const sched::LatencyModel& lat = params.latency;
  const std::uint32_t deadline = params.deadline.value_or(
      sched::TimeFrames(g, lat, std::nullopt, true).criticalPathSteps());
  sched::TimeFrames frames(g, lat, deadline, /*includeTemporal=*/true);

  std::vector<std::uint32_t> eligible;
  for (std::uint32_t r = 0; r < loc->nodes.size(); ++r) {
    if (frames.mobility(loc->nodes[r]) >= 1) {
      eligible.push_back(r);
    }
  }
  if (eligible.size() < 2) {
    return std::nullopt;
  }
  const std::size_t k = params.k_explicit.value_or(std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             params.k_fraction * static_cast<double>(eligible.size())))));

  crypto::KeyedBitstream bits(signature_, context + "/encode");
  SchedEmbedResult result;
  std::vector<std::uint32_t> pool = eligible;
  while (result.certificate.constraints.size() < k && !pool.empty()) {
    const std::size_t idx = bits.below(pool.size());
    const std::uint32_t r = pool[idx];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    const NodeId ni = loc->nodes[r];
    std::vector<std::uint32_t> partners;
    for (const std::uint32_t other : eligible) {
      if (other == r) {
        continue;
      }
      const NodeId nk = loc->nodes[other];
      if (!frames.lifetimesOverlap(ni, nk) ||
          g.hasEdge(ni, nk, cdfg::EdgeKind::kTemporal) ||
          reachesGlobal(g, nk, ni) || reachesGlobal(g, ni, nk) ||
          frames.asap(ni) + 1 > frames.alap(nk)) {
        continue;
      }
      partners.push_back(other);
    }
    if (partners.empty()) {
      continue;
    }
    const std::uint32_t pick = partners[bits.below(partners.size())];
    const NodeId nk = loc->nodes[pick];
    result.added_edges.push_back(g.addEdge(ni, nk, cdfg::EdgeKind::kTemporal));
    result.certificate.constraints.push_back(RankConstraint{r, pick});
    frames = sched::TimeFrames(g, lat, deadline, /*includeTemporal=*/true);
  }
  if (result.certificate.constraints.empty()) {
    return std::nullopt;
  }
  result.certificate.context = context;
  result.certificate.locality_params = LocalityParams{};
  result.certificate.shape = loc->shape;
  result.locality = std::move(*loc);
  return result;
}

SchedDetectResult GlobalWatermarker::detect(
    const cdfg::Cdfg& suspect, const sched::Schedule& schedule,
    const WatermarkCertificate& certificate) const {
  SchedDetectResult det;
  det.total = certificate.constraints.size();
  det.root = NodeId::invalid();

  const LocalityDeriver deriver(suspect);
  const std::optional<Locality> loc = deriver.wholeDesign(4);
  if (!loc || !shapeEquals(loc->shape, certificate.shape)) {
    return det;  // the whole design no longer matches: detection fails
  }
  det.shape_matches = 1;
  for (const RankConstraint& c : certificate.constraints) {
    const NodeId before = loc->nodes[c.before_rank];
    const NodeId after = loc->nodes[c.after_rank];
    if (schedule.isSet(before) && schedule.isSet(after) &&
        schedule.at(before) < schedule.at(after)) {
      ++det.satisfied;
    }
  }
  det.found = det.satisfied == det.total && det.total > 0;
  return det;
}

}  // namespace locwm::wm
