// Global scheduling watermark — the baseline the paper argues against.
//
// Prior-art IPP techniques ([1]–[6] in the paper) encode one signature as
// constraints spread over the ENTIRE design: identification covers every
// component, so detection "requires unique identification of each
// component of the design" and fails the moment the design is cut or
// embedded into a larger system (§I).  This module implements that
// baseline faithfully so the benches can compare it head-to-head with
// local watermarks under the paper's adversarial scenarios:
//
//   * embedding: whole-design identification over all uniquely
//     identifiable operations, K temporal edges drawn anywhere among the
//     eligible pairs;
//   * detection: a single whole-design comparison — the suspect must BE
//     the marked design (same contracted identification graph); any
//     extension or cut breaks the comparison by construction.
#pragma once

#include <optional>
#include <string>

#include "cdfg/graph.h"
#include "core/sched_wm.h"

namespace locwm::wm {

/// Parameters of the global baseline.
struct GlobalWmParams {
  /// Number of temporal edges as a fraction of the eligible node count.
  double k_fraction = 0.2;
  std::optional<std::size_t> k_explicit;
  /// Scheduling deadline the marked design must still meet.
  std::optional<std::uint32_t> deadline;
  sched::LatencyModel latency = sched::LatencyModel::unit();
};

/// Embeds + detects the global baseline for one author signature.
class GlobalWatermarker {
 public:
  explicit GlobalWatermarker(crypto::AuthorSignature signature)
      : signature_(std::move(signature)) {}

  /// Embeds one global watermark (adds temporal edges).  Returns nullopt
  /// when the design has too few uniquely identifiable operations.
  [[nodiscard]] std::optional<SchedEmbedResult> embed(
      cdfg::Cdfg& g, const GlobalWmParams& params = {}) const;

  /// Whole-design detection: succeeds only when the suspect's contracted
  /// identification graph equals the certificate's shape exactly and the
  /// schedule satisfies every constraint.
  [[nodiscard]] SchedDetectResult detect(
      const cdfg::Cdfg& suspect, const sched::Schedule& schedule,
      const WatermarkCertificate& certificate) const;

 private:
  crypto::AuthorSignature signature_;
};

}  // namespace locwm::wm
