#include "regbind/lifetime.h"

#include <algorithm>

#include "cdfg/error.h"

namespace locwm::regbind {

using cdfg::EdgeId;
using cdfg::NodeId;
using cdfg::OpKind;

namespace {

/// True when the node's result is a register value.  Outputs are sinks;
/// stores and branches produce no value; constants/inputs do produce one
/// (they occupy a register or port, and bind like any other value).
/// True when `n` has at least one outgoing data edge.  Early-exit walk
/// over the edge list — dataSuccessors() would materialize the full
/// successor vector just to test emptiness.
bool hasDataSuccessor(const cdfg::Cdfg& g, NodeId n) {
  for (const EdgeId e : g.outEdges(n)) {
    if (g.edge(e).kind == cdfg::EdgeKind::kData) {
      return true;
    }
  }
  return false;
}

bool producesValue(const cdfg::Cdfg& g, NodeId n) {
  switch (g.node(n).kind) {
    case OpKind::kOutput:
    case OpKind::kStore:
    case OpKind::kBranch:
      return false;
    default:
      return hasDataSuccessor(g, n) || g.node(n).kind != OpKind::kConst;
  }
}

}  // namespace

LifetimeTable computeLifetimes(const cdfg::Cdfg& g, const sched::Schedule& s,
                               const sched::LatencyModel& lat) {
  detail::check(!sched::validate(g, s, lat, /*checkTemporal=*/false),
                "computeLifetimes: schedule is invalid");
  LifetimeTable table;
  table.index_of.assign(g.nodeCount(), LifetimeTable::npos);

  for (const NodeId v : g.allNodes()) {
    if (!producesValue(g, v)) {
      continue;
    }
    Lifetime life;
    life.producer = v;
    life.def = s.at(v) + lat.latency(g.node(v).kind);
    life.last = life.def;
    for (const EdgeId e : g.outEdges(v)) {
      const cdfg::Edge& ed = g.edge(e);
      if (ed.kind != cdfg::EdgeKind::kData) {
        continue;
      }
      if (g.node(ed.dst).kind == OpKind::kOutput) {
        life.live_out = true;
        continue;
      }
      life.last = std::max(life.last, s.at(ed.dst));
    }
    table.index_of[v.value()] = table.values.size();
    table.values.push_back(life);
  }
  return table;
}

}  // namespace locwm::regbind
