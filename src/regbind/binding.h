// Register binding: coloring the value-conflict relation.
//
// The behavioral-synthesis coloring task the paper's §III sketches as
// another carrier for local watermarks ("while uniquely marking a solution
// to graph coloring, a local watermark is embedded in a random subgraph").
// Values whose lifetimes overlap conflict; a binding assigns every value a
// register such that conflicting values differ.  The left-edge algorithm
// gives an optimal binding for interval conflicts; alias constraints (the
// watermark's "these two values share one register") are honoured by
// merging the aliased values before coloring.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "regbind/lifetime.h"

namespace locwm::regbind {

/// A register assignment for every value in a LifetimeTable (parallel to
/// LifetimeTable::values).
struct Binding {
  std::vector<std::uint32_t> reg_of;
  std::uint32_t register_count = 0;

  [[nodiscard]] std::uint32_t of(const LifetimeTable& table,
                                 cdfg::NodeId producer) const {
    return reg_of[table.index_of[producer.value()]];
  }
};

/// Alias constraint: the two producers' values must share one register.
/// Only meaningful for non-conflicting values.
using AliasPair = std::pair<cdfg::NodeId, cdfg::NodeId>;

/// Options of the binder.
struct BindOptions {
  /// Watermark constraints; aliased values are merged before coloring.
  /// Throws WatermarkError if an alias pair conflicts (directly or through
  /// the transitive closure of the aliases).
  std::vector<AliasPair> aliases;
};

/// Left-edge register binding.  Deterministic; optimal register count for
/// pure interval conflicts (without live-out values or aliases).
[[nodiscard]] Binding bindRegisters(const LifetimeTable& table,
                                    const BindOptions& options = {});

/// Validates a binding: no two conflicting values share a register.
[[nodiscard]] bool isValidBinding(const LifetimeTable& table,
                                  const Binding& binding);

/// Lower bound on registers: the maximum number of simultaneously live
/// values (the clique number of the interval conflict graph).
[[nodiscard]] std::uint32_t maxLive(const LifetimeTable& table);

}  // namespace locwm::regbind
