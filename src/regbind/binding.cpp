#include "regbind/binding.h"

#include <algorithm>
#include <numeric>

#include "cdfg/error.h"

namespace locwm::regbind {

namespace {

/// Tiny union-find over value indices.
struct UnionFind {
  std::vector<std::size_t> parent;

  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

}  // namespace

Binding bindRegisters(const LifetimeTable& table, const BindOptions& options) {
  const std::size_t n = table.values.size();
  UnionFind uf(n);
  for (const auto& [a, b] : options.aliases) {
    detail::check<WatermarkError>(table.produces(a) && table.produces(b),
                                  "bindRegisters: alias on a non-value node");
    uf.unite(table.index_of[a.value()], table.index_of[b.value()]);
  }

  // Groups of aliased values, keyed by representative.
  std::vector<std::vector<std::size_t>> group_members(n);
  for (std::size_t i = 0; i < n; ++i) {
    group_members[uf.find(i)].push_back(i);
  }
  // Internal conflict check: every pair within a group must be compatible.
  for (std::size_t rep = 0; rep < n; ++rep) {
    const auto& members = group_members[rep];
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        detail::check<WatermarkError>(
            !table.values[members[i]].overlaps(table.values[members[j]]),
            "bindRegisters: alias constraint merges conflicting values");
      }
    }
  }

  // Left-edge over groups: ascending earliest definition; each group takes
  // the smallest register compatible with everything already placed there.
  std::vector<std::size_t> reps;
  for (std::size_t rep = 0; rep < n; ++rep) {
    if (!group_members[rep].empty()) {
      reps.push_back(rep);
    }
  }
  std::sort(reps.begin(), reps.end(), [&](std::size_t a, std::size_t b) {
    std::uint32_t da = 0xFFFFFFFFu;
    std::uint32_t db = 0xFFFFFFFFu;
    for (const std::size_t m : group_members[a]) {
      da = std::min(da, table.values[m].def);
    }
    for (const std::size_t m : group_members[b]) {
      db = std::min(db, table.values[m].def);
    }
    return std::tie(da, a) < std::tie(db, b);
  });

  Binding binding;
  binding.reg_of.assign(n, 0);
  std::vector<std::vector<std::size_t>> per_register;  // value indices
  for (const std::size_t rep : reps) {
    std::uint32_t reg = 0;
    for (; reg < per_register.size(); ++reg) {
      bool ok = true;
      for (const std::size_t placed : per_register[reg]) {
        for (const std::size_t m : group_members[rep]) {
          if (table.values[placed].overlaps(table.values[m])) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          break;
        }
      }
      if (ok) {
        break;
      }
    }
    if (reg == per_register.size()) {
      per_register.emplace_back();
    }
    for (const std::size_t m : group_members[rep]) {
      binding.reg_of[m] = reg;
      per_register[reg].push_back(m);
    }
  }
  binding.register_count = static_cast<std::uint32_t>(per_register.size());
  return binding;
}

bool isValidBinding(const LifetimeTable& table, const Binding& binding) {
  const std::size_t n = table.values.size();
  if (binding.reg_of.size() != n) {
    return false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (binding.reg_of[i] == binding.reg_of[j] &&
          table.values[i].overlaps(table.values[j])) {
        return false;
      }
    }
  }
  return true;
}

std::uint32_t maxLive(const LifetimeTable& table) {
  // Sweep definition/death events.  Live-out values never die.
  std::vector<std::pair<std::uint32_t, int>> events;
  for (const Lifetime& life : table.values) {
    events.push_back({life.def, +1});
    if (!life.live_out) {
      events.push_back({life.last + 1, -1});
    }
  }
  std::sort(events.begin(), events.end());
  std::int64_t live = 0;
  std::int64_t peak = 0;
  for (const auto& [step, delta] : events) {
    live += delta;
    peak = std::max(peak, live);
  }
  return static_cast<std::uint32_t>(peak);
}

}  // namespace locwm::regbind
