// Variable lifetimes — the input to register binding.
//
// After scheduling, every value (the output of a real operation or a
// primary input) lives from the step its producer completes until the
// start step of its last consumer.  Two values whose lifetimes overlap
// cannot share a register; binding is a coloring of that conflict
// relation.  This module derives the lifetimes from a schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "cdfg/graph.h"
#include "sched/latency.h"
#include "sched/schedule.h"

namespace locwm::regbind {

/// Lifetime of one value, in control steps.
struct Lifetime {
  cdfg::NodeId producer;   ///< node whose output is the value
  std::uint32_t def = 0;   ///< step the value becomes available
  std::uint32_t last = 0;  ///< start step of the last consumer (>= def)
  bool live_out = false;   ///< value feeds a primary output (never dies)

  /// Two values conflict when both are live in some step.  A live-out
  /// value conflicts with everything born after its definition.
  [[nodiscard]] bool overlaps(const Lifetime& other) const noexcept {
    const std::uint32_t my_end = live_out ? 0xFFFFFFFFu : last;
    const std::uint32_t other_end = other.live_out ? 0xFFFFFFFFu : other.last;
    return def <= other_end && other.def <= my_end;
  }
};

/// Computes the lifetime of every value in `g` under schedule `s`.
/// Returned in producer-node order (index by NodeId::value of producers
/// via the `index_of` map below).  Values with no consumers die
/// immediately (last == def).
struct LifetimeTable {
  std::vector<Lifetime> values;
  /// index_of[node value] = index into `values`, or npos for non-producers
  /// (outputs, stores, branches produce no register value).
  std::vector<std::size_t> index_of;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] bool produces(cdfg::NodeId n) const {
    return n.value() < index_of.size() && index_of[n.value()] != npos;
  }
  [[nodiscard]] const Lifetime& of(cdfg::NodeId n) const {
    return values[index_of[n.value()]];
  }
};

/// Derives the lifetime table.  The schedule must be complete and valid.
[[nodiscard]] LifetimeTable computeLifetimes(
    const cdfg::Cdfg& g, const sched::Schedule& s,
    const sched::LatencyModel& lat = sched::LatencyModel::unit());

}  // namespace locwm::regbind
