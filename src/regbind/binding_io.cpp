#include "regbind/binding_io.h"

#include <sstream>

#include "cdfg/error.h"

namespace locwm::regbind {

void printBinding(std::ostream& os, const LifetimeTable& table,
                  const Binding& binding) {
  os << "registers " << binding.register_count << '\n';
  for (std::size_t i = 0; i < table.values.size(); ++i) {
    os << table.values[i].producer.value() << ' ' << binding.reg_of[i]
       << '\n';
  }
}

std::string bindingToString(const LifetimeTable& table,
                            const Binding& binding) {
  std::ostringstream os;
  printBinding(os, table, binding);
  return os.str();
}

namespace {

Binding parseBindingImpl(std::istream& is, const LifetimeTable& table,
                         std::vector<BindingParseIssue>* issues,
                         const std::string& source = {}) {
  Binding binding;
  binding.reg_of.assign(table.values.size(), 0);
  std::vector<bool> assigned(table.values.size(), false);
  std::string line;
  std::size_t lineno = 0;
  bool have_header = false;
  const std::string where = source.empty() ? "" : source + ": ";
  const auto fail = [&](const std::string& why) {
    throw ParseError(where + "binding parse error at line " +
                     std::to_string(lineno) + ": " + why);
  };
  const auto reject = [&](const std::string& why) {
    if (!issues) {
      fail(why);
    }
    issues->push_back({lineno, why, source});
  };
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) {
      continue;  // blank/comment
    }
    if (!have_header) {
      if (first != "registers" || !(ls >> binding.register_count)) {
        fail("missing 'registers N' header");
      }
      have_header = true;
      continue;
    }
    std::uint32_t node = 0;
    std::uint32_t reg = 0;
    try {
      node = static_cast<std::uint32_t>(std::stoul(first));
    } catch (const std::exception&) {
      fail("malformed entry '" + first + "'");
    }
    if (!(ls >> reg)) {
      fail("entry for node " + std::to_string(node) + " lacks a register");
    }
    if (node >= table.index_of.size() ||
        table.index_of[node] == LifetimeTable::npos) {
      reject("node " + std::to_string(node) + " produces no register value");
      continue;
    }
    if (issues && reg >= binding.register_count) {
      reject("register " + std::to_string(reg) + " of node " +
             std::to_string(node) + " is outside the declared count " +
             std::to_string(binding.register_count));
      continue;
    }
    binding.reg_of[table.index_of[node]] = reg;
    assigned[table.index_of[node]] = true;
  }
  if (!have_header) {
    throw ParseError(where +
                     "binding parse error: missing 'registers N' header");
  }
  if (issues) {
    for (std::size_t i = 0; i < assigned.size(); ++i) {
      if (!assigned[i]) {
        issues->push_back(
            {0,
             "value of node " +
                 std::to_string(table.values[i].producer.value()) +
                 " has no register assignment",
             source});
      }
    }
  }
  return binding;
}

}  // namespace

Binding parseBinding(std::istream& is, const LifetimeTable& table) {
  return parseBindingImpl(is, table, nullptr);
}

Binding parseBinding(std::istream& is, const LifetimeTable& table,
                     std::vector<BindingParseIssue>& issues,
                     const std::string& source) {
  return parseBindingImpl(is, table, &issues, source);
}

}  // namespace locwm::regbind
