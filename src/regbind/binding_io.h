// Text serialization of register bindings — the artifact a register-
// binding watermark lives in, so it needs a durable interchange form
// (previously private to the CLI).  Format:
//
//   registers <count>
//   <producer-node-index> <register> ...one line per value...
//
// '#' comments allowed.  Values are keyed by their producer node; every
// line must name a node that produces a register value under the lifetime
// table the binding is parsed against.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "regbind/binding.h"
#include "regbind/lifetime.h"

namespace locwm::regbind {

/// Writes `binding` (parallel to `table`) in the text format.
void printBinding(std::ostream& os, const LifetimeTable& table,
                  const Binding& binding);

/// Renders to a string.
[[nodiscard]] std::string bindingToString(const LifetimeTable& table,
                                          const Binding& binding);

/// One invalid binding entry found while parsing in lenient mode: the
/// entry is dropped and recorded so a linter can report it with a stable
/// code.  line == 0 marks whole-file findings (values never assigned).
struct BindingParseIssue {
  std::size_t line = 0;
  std::string what;
  std::string path;  ///< source artifact ("" when anonymous)
};

/// Parses a binding against `table`.  Throws ParseError on a malformed
/// header or an entry whose node produces no register value.  Entries for
/// values the file does not mention default to register 0.
[[nodiscard]] Binding parseBinding(std::istream& is,
                                   const LifetimeTable& table);

/// Lenient overload: invalid entries (non-value nodes, registers at or
/// above the declared count) and values left unassigned are recorded in
/// `issues` instead of throwing.  Syntax errors still throw.
[[nodiscard]] Binding parseBinding(std::istream& is,
                                   const LifetimeTable& table,
                                   std::vector<BindingParseIssue>& issues,
                                   const std::string& source = {});

}  // namespace locwm::regbind
