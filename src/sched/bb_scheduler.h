// Exact branch-and-bound scheduler — stand-in for the ILP formulation [15].
//
// Minimizes the functional-unit cost of a time-constrained schedule by
// exhaustive search with pruning.  Exponential in the worst case; intended
// for the small designs of Table II and for validating the heuristic
// schedulers in tests.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "cdfg/graph.h"
#include "sched/latency.h"
#include "sched/schedule.h"

namespace locwm::sched {

/// Options of the exact scheduler.
struct BranchBoundOptions {
  LatencyModel latency = LatencyModel::unit();
  /// Deadline in control steps; nullopt = critical path.
  std::optional<std::uint32_t> deadline;
  bool honor_temporal = true;
  /// Relative cost of one unit of each class (ALU, MUL, MEM, BRANCH);
  /// multipliers are typically much larger than adders.
  std::array<double, cdfg::kFuClassCount> unit_cost = {0.0, 1.0, 8.0, 2.0,
                                                       2.0};
  /// Search-effort cap: maximum number of branch steps before giving up
  /// and returning the incumbent (which is always feasible).
  std::uint64_t max_steps = 50'000'000;
};

/// Result of the exact search.
struct BranchBoundResult {
  Schedule schedule;
  double cost = 0;         ///< unit-cost-weighted sum of per-class peaks
  bool proven_optimal = false;
  std::uint64_t steps_explored = 0;
};

/// Runs the search.  Throws ScheduleError when the deadline is infeasible.
[[nodiscard]] BranchBoundResult branchBoundSchedule(
    const cdfg::Cdfg& g, const BranchBoundOptions& options = {});

}  // namespace locwm::sched
