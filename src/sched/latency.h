// Operation latency model.
//
// Behavioral synthesis schedules operations into control steps; an
// operation occupies its functional unit for latency(op) consecutive steps.
// Pseudo-operations (inputs/outputs/constants) always have latency 0 and
// are pinned to the step of their consumer/producer by validation.
#pragma once

#include <array>
#include <cstdint>

#include "cdfg/graph.h"
#include "cdfg/operation.h"

namespace locwm::sched {

/// Per-operation-kind latency table, in control steps.
class LatencyModel {
 public:
  /// Every real operation takes one control step — the model used by the
  /// paper's examples and the schedule-counting machinery.
  [[nodiscard]] static LatencyModel unit();

  /// Classic HYPER-era datapath model: multiplications (and divisions)
  /// take two control steps, everything else one.
  [[nodiscard]] static LatencyModel hyperDefault();

  /// Latency of `kind`; 0 for pseudo-ops regardless of configuration.
  [[nodiscard]] std::uint32_t latency(cdfg::OpKind kind) const noexcept;

  /// Overrides the latency of one kind.  Ignored for pseudo-ops.
  void setLatency(cdfg::OpKind kind, std::uint32_t cycles) noexcept;

  /// Precedence gap a dependence edge imposes: data/control edges require
  /// start(dst) >= start(src) + latency(src); temporal edges require
  /// start(dst) >= start(src) + 1 ("scheduled before", §IV-A), independent
  /// of latency.
  [[nodiscard]] std::uint32_t edgeGap(cdfg::OpKind srcKind,
                                      cdfg::EdgeKind edgeKind) const noexcept;

 private:
  LatencyModel() = default;
  std::array<std::uint32_t, cdfg::kOpKindCount> table_{};
};

}  // namespace locwm::sched
