// ASAP / ALAP time frames and mobility.
//
// The watermarking protocol reasons about the "asap–alap lifetime" of every
// operation (§IV-A): eligible watermark nodes must have overlapping
// lifetimes with a partner and enough laxity.  The same frames drive the
// force-directed scheduler and bound the exact schedule enumerator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cdfg/graph.h"
#include "sched/latency.h"
#include "sched/schedule.h"

namespace locwm::sched {

/// Per-node [asap, alap] start-step intervals under a deadline.
class TimeFrames {
 public:
  /// Computes frames for `g` under latency model `lat` and `deadline`
  /// control steps (the schedule must fit in steps [0, deadline)).
  ///
  /// When `deadline` is nullopt the critical-path length is used, i.e. the
  /// tightest feasible deadline.  `includeTemporal` controls whether
  /// temporal (watermark) edges constrain the frames — embedding computes
  /// frames on the *original* constraints, scheduling afterwards on the
  /// augmented ones.
  ///
  /// Throws ScheduleError when `deadline` is below the critical path.
  TimeFrames(const cdfg::Cdfg& g, const LatencyModel& lat,
             std::optional<std::uint32_t> deadline = std::nullopt,
             bool includeTemporal = true);

  [[nodiscard]] std::uint32_t asap(cdfg::NodeId n) const;
  [[nodiscard]] std::uint32_t alap(cdfg::NodeId n) const;

  /// alap - asap: the scheduling freedom of the operation.
  [[nodiscard]] std::uint32_t mobility(cdfg::NodeId n) const;

  /// The deadline the frames were computed for.
  [[nodiscard]] std::uint32_t deadline() const noexcept { return deadline_; }

  /// Length of the critical path in control steps under `lat` (the minimal
  /// feasible deadline).
  [[nodiscard]] std::uint32_t criticalPathSteps() const noexcept {
    return critical_;
  }

  /// The paper's lifetime-overlap predicate: true when the [asap, alap]
  /// intervals of `a` and `b` intersect, i.e. some schedule may place them
  /// in the same step — the precondition for a meaningful temporal edge.
  [[nodiscard]] bool lifetimesOverlap(cdfg::NodeId a, cdfg::NodeId b) const;

 private:
  std::vector<std::uint32_t> asap_;
  std::vector<std::uint32_t> alap_;
  std::uint32_t deadline_ = 0;
  std::uint32_t critical_ = 0;
};

}  // namespace locwm::sched
