#include "sched/bb_scheduler.h"

#include <algorithm>
#include <vector>

#include "cdfg/error.h"
#include "obs/obs.h"
#include "sched/force_directed.h"
#include "sched/timeframes.h"

namespace locwm::sched {

using cdfg::EdgeId;
using cdfg::NodeId;

namespace {

struct SearchState {
  const cdfg::Cdfg* g = nullptr;
  const BranchBoundOptions* options = nullptr;
  std::vector<NodeId> order;              // real ops in topo order
  std::vector<std::uint32_t> alap;        // static upper bounds
  std::vector<std::uint32_t> start;       // assignment per node value
  std::vector<std::vector<std::uint32_t>> usage;  // [fu][step]
  std::vector<std::uint32_t> peak;        // current per-class peak
  double best_cost = 0;
  Schedule best;
  bool found = false;
  std::uint64_t steps = 0;
  bool budget_hit = false;

  [[nodiscard]] double costOf(const std::vector<std::uint32_t>& peaks) const {
    double c = 0;
    for (std::size_t fu = 0; fu < peaks.size(); ++fu) {
      c += options->unit_cost[fu] * peaks[fu];
    }
    return c;
  }

  void dfs(std::size_t index) {
    if (budget_hit) {
      return;
    }
    if (++steps > options->max_steps) {
      budget_hit = true;
      return;
    }
    if (index == order.size()) {
      const double cost = costOf(peak);
      if (!found || cost < best_cost) {
        best_cost = cost;
        found = true;
        for (const NodeId v : order) {
          best.set(v, start[v.value()]);
        }
      }
      return;
    }
    if (found && costOf(peak) >= best_cost) {
      return;  // bound: peaks only grow as we assign more ops
    }

    const NodeId v = order[index];
    const cdfg::OpKind kind = g->node(v).kind;
    const std::uint32_t l = options->latency.latency(kind);
    const auto fu = static_cast<std::size_t>(cdfg::fuClass(kind));

    std::uint32_t lo = 0;
    for (const EdgeId e : g->inEdges(v)) {
      const cdfg::Edge& ed = g->edge(e);
      if (ed.kind == cdfg::EdgeKind::kTemporal && !options->honor_temporal) {
        continue;
      }
      if (options->latency.latency(g->node(ed.src).kind) == 0) {
        continue;  // pseudo-op sources impose no bound
      }
      const std::uint32_t gap =
          options->latency.edgeGap(g->node(ed.src).kind, ed.kind);
      lo = std::max(lo, start[ed.src.value()] + gap);
    }

    for (std::uint32_t t = lo; t <= alap[v.value()]; ++t) {
      start[v.value()] = t;
      const std::vector<std::uint32_t> saved_peak = peak;
      for (std::uint32_t k = 0; k < l; ++k) {
        peak[fu] = std::max(peak[fu], ++usage[fu][t + k]);
      }
      dfs(index + 1);
      for (std::uint32_t k = 0; k < l; ++k) {
        --usage[fu][t + k];
      }
      peak = saved_peak;
      if (budget_hit) {
        return;
      }
    }
  }
};

}  // namespace

BranchBoundResult branchBoundSchedule(const cdfg::Cdfg& g,
                                      const BranchBoundOptions& options) {
  LOCWM_OBS_SPAN("sched.bb");
  const TimeFrames tf(g, options.latency, options.deadline,
                      options.honor_temporal);
  const std::uint32_t deadline = tf.deadline();

  SearchState st;
  st.g = &g;
  st.options = &options;
  st.alap.resize(g.nodeCount());
  st.start.assign(g.nodeCount(), 0);
  st.usage.assign(cdfg::kFuClassCount,
                  std::vector<std::uint32_t>(deadline + 1, 0));
  st.peak.assign(cdfg::kFuClassCount, 0);
  st.best = Schedule(g.nodeCount());

  for (const NodeId v : g.topologicalOrder(options.honor_temporal)) {
    st.alap[v.value()] = tf.alap(v);
    if (options.latency.latency(g.node(v).kind) > 0) {
      st.order.push_back(v);
    }
  }

  // Seed the incumbent with the force-directed solution: gives an immediate
  // strong bound and guarantees a feasible result under the step budget.
  ForceDirectedOptions fd;
  fd.latency = options.latency;
  fd.deadline = deadline;
  fd.honor_temporal = options.honor_temporal;
  const Schedule seed = forceDirectedSchedule(g, fd);
  const ResourceProfile seed_profile = resourceProfile(g, seed, options.latency);
  st.best_cost = st.costOf(seed_profile.peaks());
  st.found = true;
  st.best = seed;

  st.dfs(0);

  // Pseudo-ops: pin inputs/constants at 0, outputs right after producers.
  // Topological order so pseudo→pseudo chains resolve in one pass.
  for (const NodeId v : g.topologicalOrder(options.honor_temporal)) {
    if (options.latency.latency(g.node(v).kind) > 0) {
      continue;
    }
    std::uint32_t t = 0;
    for (const EdgeId e : g.inEdges(v)) {
      const cdfg::Edge& ed = g.edge(e);
      const std::uint32_t gap =
          options.latency.edgeGap(g.node(ed.src).kind, ed.kind);
      if (st.best.isSet(ed.src)) {
        t = std::max(t, st.best.at(ed.src) + gap);
      }
    }
    st.best.set(v, t);
  }

  BranchBoundResult result;
  result.schedule = st.best;
  result.cost = st.best_cost;
  result.proven_optimal = !st.budget_hit;
  result.steps_explored = st.steps;
  LOCWM_OBS_COUNT("sched.bb.steps_explored", st.steps);
  LOCWM_OBS_COUNT("sched.bb.budget_hits", st.budget_hit ? 1 : 0);
  LOCWM_OBS_COUNT("sched.bb.runs", 1);
  return result;
}

}  // namespace locwm::sched
