#include "sched/schedule.h"

#include <algorithm>

#include "cdfg/error.h"

namespace locwm::sched {

using cdfg::EdgeId;
using cdfg::NodeId;

void Schedule::set(NodeId n, std::uint32_t step) {
  detail::check<ScheduleError>(n.isValid() && n.value() < start_.size(),
                               "Schedule::set: node id out of range");
  start_[n.value()] = step;
}

bool Schedule::isSet(NodeId n) const {
  detail::check<ScheduleError>(n.isValid() && n.value() < start_.size(),
                               "Schedule::isSet: node id out of range");
  return start_[n.value()] != kUnset;
}

std::uint32_t Schedule::at(NodeId n) const {
  detail::check<ScheduleError>(n.isValid() && n.value() < start_.size(),
                               "Schedule::at: node id out of range");
  detail::check<ScheduleError>(start_[n.value()] != kUnset,
                               "Schedule::at: node is unscheduled");
  return static_cast<std::uint32_t>(start_[n.value()]);
}

std::uint32_t Schedule::makespan(const cdfg::Cdfg& g,
                                 const LatencyModel& lat) const {
  std::uint32_t end = 0;
  for (const NodeId v : g.allNodes()) {
    if (!isSet(v)) {
      continue;
    }
    const std::uint32_t l = lat.latency(g.node(v).kind);
    if (l == 0) {
      continue;  // pseudo-ops take no step
    }
    end = std::max(end, at(v) + l);
  }
  return end;
}

std::optional<ScheduleViolation> validate(const cdfg::Cdfg& g,
                                          const Schedule& s,
                                          const LatencyModel& lat,
                                          bool checkTemporal) {
  for (const NodeId v : g.allNodes()) {
    if (!s.isSet(v)) {
      return ScheduleViolation{EdgeId::invalid(), v,
                               "node " + std::to_string(v.value()) +
                                   " is unscheduled"};
    }
  }
  for (const EdgeId e : g.allEdges()) {
    const cdfg::Edge& ed = g.edge(e);
    if (ed.kind == cdfg::EdgeKind::kTemporal && !checkTemporal) {
      continue;
    }
    const std::uint32_t gap = lat.edgeGap(g.node(ed.src).kind, ed.kind);
    if (s.at(ed.dst) < s.at(ed.src) + gap) {
      return ScheduleViolation{
          e, NodeId::invalid(),
          std::string(cdfg::edgeKindName(ed.kind)) + " edge " +
              std::to_string(ed.src.value()) + "->" +
              std::to_string(ed.dst.value()) + " violated: " +
              std::to_string(s.at(ed.src)) + " + " + std::to_string(gap) +
              " > " + std::to_string(s.at(ed.dst))};
    }
  }
  return std::nullopt;
}

std::vector<std::uint32_t> ResourceProfile::peaks() const {
  std::vector<std::uint32_t> result(usage.size(), 0);
  for (std::size_t fu = 0; fu < usage.size(); ++fu) {
    for (const std::uint32_t u : usage[fu]) {
      result[fu] = std::max(result[fu], u);
    }
  }
  return result;
}

ResourceProfile resourceProfile(const cdfg::Cdfg& g, const Schedule& s,
                                const LatencyModel& lat) {
  ResourceProfile profile;
  const std::uint32_t steps = s.makespan(g, lat);
  profile.usage.assign(cdfg::kFuClassCount,
                       std::vector<std::uint32_t>(steps, 0));
  for (const NodeId v : g.allNodes()) {
    const cdfg::OpKind kind = g.node(v).kind;
    const std::uint32_t l = lat.latency(kind);
    if (l == 0 || !s.isSet(v)) {
      continue;
    }
    const auto fu = static_cast<std::size_t>(cdfg::fuClass(kind));
    for (std::uint32_t t = s.at(v); t < s.at(v) + l; ++t) {
      ++profile.usage[fu][t];
    }
  }
  return profile;
}

ResourceLimits ResourceLimits::of(std::uint32_t alu, std::uint32_t mul,
                                  std::uint32_t mem, std::uint32_t branch) {
  ResourceLimits limits;
  limits.limit[static_cast<std::size_t>(cdfg::FuClass::kAlu)] = alu;
  limits.limit[static_cast<std::size_t>(cdfg::FuClass::kMul)] = mul;
  limits.limit[static_cast<std::size_t>(cdfg::FuClass::kMem)] = mem;
  limits.limit[static_cast<std::size_t>(cdfg::FuClass::kBranch)] = branch;
  return limits;
}

bool respectsLimits(const ResourceProfile& profile,
                    const ResourceLimits& limits) {
  for (std::size_t fu = 0; fu < profile.usage.size(); ++fu) {
    const std::uint32_t cap = limits.limit[fu];
    if (cap == 0) {
      continue;  // unlimited
    }
    for (const std::uint32_t u : profile.usage[fu]) {
      if (u > cap) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace locwm::sched
