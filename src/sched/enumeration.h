// Exhaustive schedule enumeration and counting.
//
// The paper's proof-of-authorship metric is a ratio of schedule counts:
// Pc ≈ Π ΨW(e)/ΨN(e), where ΨW counts the schedules satisfying the added
// temporal edge and ΨN counts all schedules (§IV-A, Fig. 3).  "Since the
// exhaustive enumeration of solutions in general results in exponential
// runtimes, we have used a trivial exhaustive enumeration technique to
// calculate these probabilities only for small examples" — this module is
// exactly that enumerator, with a work budget so callers can fall back to
// the approximate model (core/pc.h) on large graphs.
//
// A "schedule" here assigns a start step in [0, deadline) to every real
// operation such that all data/control (and optionally temporal) precedence
// gaps hold; resources are unconstrained, matching the paper's counting.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "cdfg/graph.h"
#include "sched/latency.h"
#include "sched/schedule.h"

namespace locwm::sched {

/// Extra precedence constraints passed to the counter without mutating the
/// graph: src must start strictly before dst (a temporal edge).
using ExtraEdge = std::pair<cdfg::NodeId, cdfg::NodeId>;

/// Options of the enumerator.
struct EnumerationOptions {
  LatencyModel latency = LatencyModel::unit();
  /// Deadline in steps; nullopt = critical path.
  std::optional<std::uint32_t> deadline;
  /// Honour temporal edges already present in the graph.
  bool honor_temporal = true;
  /// Additional before-constraints applied on top of the graph.
  std::vector<ExtraEdge> extra_edges;
  /// Explicit start-window overrides: node must start within [lo, hi].
  /// Used to enumerate a subtree under the *global* frames of the design
  /// it was carved from (the paper's Fig. 3 counting).
  struct Window {
    cdfg::NodeId node;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
  };
  std::vector<Window> windows;
  /// Abort knob: maximum number of partial assignments explored.
  std::uint64_t max_steps = 200'000'000;
};

/// Result of a counting run.
struct CountResult {
  std::uint64_t count = 0;     ///< number of feasible schedules
  bool exact = true;           ///< false when the work budget was hit
  std::uint64_t steps = 0;     ///< search effort spent
};

/// Counts feasible schedules.  Returns exact=false when max_steps was
/// exhausted (count is then a lower bound).
[[nodiscard]] CountResult countSchedules(const cdfg::Cdfg& g,
                                         const EnumerationOptions& options = {});

/// Enumerates feasible schedules, invoking `visit` for each.  `visit` may
/// return false to stop early.  Pseudo-ops are pinned (inputs at 0,
/// outputs after their producers).
void enumerateSchedules(const cdfg::Cdfg& g, const EnumerationOptions& options,
                        const std::function<bool(const Schedule&)>& visit);

/// The paper's Ψ pair for one candidate temporal edge e = (src → dst):
/// ΨN = number of schedules of `g` (without e), ΨW = those in which src
/// starts strictly before dst.  Fig. 3's example: ΨN = 77, ΨW = 10.
struct PsiPair {
  CountResult with_edge;     ///< ΨW
  CountResult without_edge;  ///< ΨN
};

[[nodiscard]] PsiPair countPsi(const cdfg::Cdfg& g, cdfg::NodeId src,
                               cdfg::NodeId dst,
                               const EnumerationOptions& options = {});

}  // namespace locwm::sched
