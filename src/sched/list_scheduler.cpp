#include "sched/list_scheduler.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "cdfg/analysis.h"
#include "obs/obs.h"

namespace locwm::sched {

using cdfg::EdgeId;
using cdfg::NodeId;

Schedule listSchedule(const cdfg::Cdfg& g,
                      const ListSchedulerOptions& options) {
  LOCWM_OBS_SPAN("sched.list");
  const LatencyModel& lat = options.latency;
  Schedule s(g.nodeCount());

  // Priorities: height (longest path to sink, in ops).  Structural, so it
  // is identical with and without the watermark edges — the watermark only
  // changes *feasibility*, not the heuristic's preferences.
  const cdfg::StructuralAnalysis analysis(g);

  // earliest[v]: lower bound on start from already-scheduled predecessors.
  std::vector<std::uint32_t> earliest(g.nodeCount(), 0);
  std::vector<std::size_t> pending(g.nodeCount(), 0);
  for (const EdgeId e : g.allEdges()) {
    const cdfg::Edge& ed = g.edge(e);
    if (ed.kind == cdfg::EdgeKind::kTemporal && !options.honor_temporal) {
      continue;
    }
    ++pending[ed.dst.value()];
  }

  // Max-heap keyed by (height, then lower id wins).
  using Key = std::pair<std::uint32_t, std::uint32_t>;
  auto keyOf = [&](NodeId v) {
    return Key(analysis.height(v), ~v.value());
  };
  std::priority_queue<std::pair<Key, NodeId>> ready;
  for (const NodeId v : g.allNodes()) {
    if (pending[v.value()] == 0) {
      ready.push({keyOf(v), v});
    }
  }

  // usage[fu][step] tracks commitments; grown on demand.
  std::vector<std::vector<std::uint32_t>> usage(cdfg::kFuClassCount);
  auto usageAt = [&](std::size_t fu, std::uint32_t step) -> std::uint32_t& {
    if (usage[fu].size() <= step) {
      usage[fu].resize(step + 1, 0);
    }
    return usage[fu][step];
  };

  std::size_t scheduled = 0;
  std::size_t ready_peak = ready.size();
  while (scheduled < g.nodeCount()) {
    detail::check<ScheduleError>(!ready.empty(),
                                 "listSchedule: dependence cycle");
    const NodeId v = ready.top().second;
    ready.pop();

    const cdfg::OpKind kind = g.node(v).kind;
    const std::uint32_t l = lat.latency(kind);
    const auto fu = static_cast<std::size_t>(cdfg::fuClass(kind));
    const std::uint32_t cap = options.limits.limit[fu];

    std::uint32_t t = earliest[v.value()];
    if (l > 0 && cap > 0) {
      // Find the first step where all l occupied steps have a free unit.
      for (;;) {
        bool fits = true;
        for (std::uint32_t k = 0; k < l; ++k) {
          if (usageAt(fu, t + k) >= cap) {
            fits = false;
            t = t + k + 1;
            break;
          }
        }
        if (fits) {
          break;
        }
      }
    }
    s.set(v, t);
    if (l > 0) {
      for (std::uint32_t k = 0; k < l; ++k) {
        ++usageAt(fu, t + k);
      }
    }
    ++scheduled;

    for (const EdgeId e : g.outEdges(v)) {
      const cdfg::Edge& ed = g.edge(e);
      if (ed.kind == cdfg::EdgeKind::kTemporal && !options.honor_temporal) {
        continue;
      }
      const std::uint32_t gap = lat.edgeGap(kind, ed.kind);
      earliest[ed.dst.value()] =
          std::max(earliest[ed.dst.value()], t + gap);
      if (--pending[ed.dst.value()] == 0) {
        ready.push({keyOf(ed.dst), ed.dst});
        ready_peak = std::max(ready_peak, ready.size());
      }
    }
  }
  LOCWM_OBS_GAUGE_MAX("sched.list.ready_peak", ready_peak);
  LOCWM_OBS_COUNT("sched.list.nodes_scheduled", scheduled);
  return s;
}

}  // namespace locwm::sched
