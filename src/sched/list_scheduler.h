// Resource-constrained list scheduling.
//
// The workhorse heuristic scheduler (paper ref [14]-style heuristics):
// operations become ready when their predecessors have completed; ready
// operations are placed greedily into the earliest step with a free
// functional unit, highest-priority first.  Priority is the node's height
// (longest path to a sink) — the classic critical-path heuristic.
//
// Temporal (watermark) edges are honoured exactly like control edges, so a
// watermarked specification is scheduled by the *same* off-the-shelf
// scheduler, which is the transparency property the paper requires.
#pragma once

#include "cdfg/graph.h"
#include "sched/latency.h"
#include "sched/schedule.h"

namespace locwm::sched {

/// Options of the list scheduler.
struct ListSchedulerOptions {
  ResourceLimits limits = ResourceLimits::unlimited();
  LatencyModel latency = LatencyModel::unit();
  /// Honour temporal edges (on for watermarked synthesis, off to obtain
  /// the unconstrained baseline).
  bool honor_temporal = true;
};

/// Schedules `g`; always succeeds (steps are unbounded upward).
[[nodiscard]] Schedule listSchedule(const cdfg::Cdfg& g,
                                    const ListSchedulerOptions& options = {});

}  // namespace locwm::sched
