#include "sched/enumeration.h"

#include <algorithm>
#include <vector>

#include "cdfg/error.h"
#include "obs/obs.h"
#include "sched/timeframes.h"

namespace locwm::sched {

using cdfg::EdgeId;
using cdfg::NodeId;

namespace {

struct Enumerator {
  const cdfg::Cdfg* g = nullptr;
  const EnumerationOptions* options = nullptr;
  std::vector<NodeId> order;        // real ops in topo order
  std::vector<std::uint32_t> alap;  // static upper bound per node value
  std::vector<std::uint32_t> start;
  // before[v] / after[v]: extra-edge partners of v, by node value.
  std::vector<std::vector<NodeId>> extra_before;  // u in extra_before[v]: u -> v
  std::vector<std::uint32_t> window_lo;           // explicit lower bounds
  // Flattened per-node predecessor constraints (CSR-style): for node v,
  // entries [pred_off[v], pred_off[v+1]) of pred_src/pred_gap hold the
  // source node value and latency gap of every constraining in-edge.
  // Built once in makeEnumerator with the temporal/zero-latency filtering
  // already applied, so the exponential recursion below touches only
  // these three flat arrays instead of chasing inEdges -> edge -> node
  // through the builder graph at every step.
  std::vector<std::uint32_t> pred_off;
  std::vector<std::uint32_t> pred_src;
  std::vector<std::uint32_t> pred_gap;
  std::uint64_t steps = 0;
  bool budget_hit = false;
  std::uint64_t count = 0;
  const std::function<bool(const Schedule&)>* visit = nullptr;
  bool stop_requested = false;

  void run(std::size_t index) {
    if (budget_hit || stop_requested) {
      return;
    }
    if (++steps > options->max_steps) {
      budget_hit = true;
      return;
    }
    if (index == order.size()) {
      ++count;
      if (visit != nullptr) {
        Schedule s(g->nodeCount());
        for (const NodeId v : order) {
          s.set(v, start[v.value()]);
        }
        // Pin pseudo-ops for the callback's benefit.
        for (const NodeId v : g->topologicalOrder(options->honor_temporal)) {
          if (s.isSet(v)) {
            continue;
          }
          std::uint32_t t = 0;
          for (const EdgeId e : g->inEdges(v)) {
            const cdfg::Edge& ed = g->edge(e);
            if (ed.kind == cdfg::EdgeKind::kTemporal &&
                !options->honor_temporal) {
              continue;
            }
            if (s.isSet(ed.src)) {
              const std::uint32_t gap =
                  options->latency.edgeGap(g->node(ed.src).kind, ed.kind);
              t = std::max(t, s.at(ed.src) + gap);
            }
          }
          s.set(v, t);
        }
        if (!(*visit)(s)) {
          stop_requested = true;
        }
      }
      return;
    }
    const NodeId v = order[index];
    std::uint32_t lo = window_lo[v.value()];
    // max() over the constraints is order-independent, so the flattened
    // arrays reproduce the inEdges walk exactly.
    for (std::uint32_t i = pred_off[v.value()]; i < pred_off[v.value() + 1];
         ++i) {
      lo = std::max(lo, start[pred_src[i]] + pred_gap[i]);
    }
    for (const NodeId u : extra_before[v.value()]) {
      lo = std::max(lo, start[u.value()] + 1);
    }
    for (std::uint32_t t = lo; t <= alap[v.value()]; ++t) {
      start[v.value()] = t;
      run(index + 1);
      if (budget_hit || stop_requested) {
        return;
      }
    }
  }
};

Enumerator makeEnumerator(const cdfg::Cdfg& g,
                          const EnumerationOptions& options) {
  Enumerator en;
  en.g = &g;
  en.options = &options;
  en.start.assign(g.nodeCount(), 0);
  en.alap.assign(g.nodeCount(), 0);
  en.extra_before.assign(g.nodeCount(), {});

  const TimeFrames tf(g, options.latency, options.deadline,
                      options.honor_temporal);
  for (const NodeId v : g.allNodes()) {
    en.alap[v.value()] = tf.alap(v);
  }
  // Flatten the recursion's constraint lookups (see Enumerator comment).
  en.pred_off.assign(g.nodeCount() + 1, 0);
  for (std::size_t i = 0; i < g.nodeCount(); ++i) {
    const NodeId v(static_cast<std::uint32_t>(i));
    for (const EdgeId e : g.inEdges(v)) {
      const cdfg::Edge& ed = g.edge(e);
      if (ed.kind == cdfg::EdgeKind::kTemporal && !options.honor_temporal) {
        continue;
      }
      if (options.latency.latency(g.node(ed.src).kind) == 0) {
        continue;
      }
      en.pred_src.push_back(ed.src.value());
      en.pred_gap.push_back(options.latency.edgeGap(g.node(ed.src).kind,
                                                    ed.kind));
    }
    en.pred_off[i + 1] = static_cast<std::uint32_t>(en.pred_src.size());
  }

  en.window_lo.assign(g.nodeCount(), 0);
  for (const EnumerationOptions::Window& w : options.windows) {
    detail::check<ScheduleError>(
        w.node.isValid() && w.node.value() < g.nodeCount() && w.lo <= w.hi,
        "countSchedules: malformed window override");
    en.window_lo[w.node.value()] =
        std::max(en.window_lo[w.node.value()], w.lo);
    en.alap[w.node.value()] = std::min(en.alap[w.node.value()], w.hi);
  }

  // Enumeration order must place every constraint source before its
  // destination, including the extra edges — build a topological order over
  // graph edges + extra edges (Kahn, lowest id first for determinism).
  std::vector<std::size_t> indegree(g.nodeCount(), 0);
  std::vector<std::vector<NodeId>> succ(g.nodeCount());
  auto link = [&](NodeId a, NodeId b) {
    succ[a.value()].push_back(b);
    ++indegree[b.value()];
  };
  for (const EdgeId e : g.allEdges()) {
    const cdfg::Edge& ed = g.edge(e);
    if (ed.kind == cdfg::EdgeKind::kTemporal && !options.honor_temporal) {
      continue;
    }
    link(ed.src, ed.dst);
  }
  for (const auto& [src, dst] : options.extra_edges) {
    detail::check<ScheduleError>(
        options.latency.latency(g.node(src).kind) > 0 &&
            options.latency.latency(g.node(dst).kind) > 0,
        "countSchedules: extra edge endpoint is a pseudo-op");
    link(src, dst);
    en.extra_before[dst.value()].push_back(src);
  }
  std::vector<NodeId> kahn_ready;
  for (const NodeId v : g.allNodes()) {
    if (indegree[v.value()] == 0) {
      kahn_ready.push_back(v);
    }
  }
  std::size_t emitted = 0;
  while (!kahn_ready.empty()) {
    std::sort(kahn_ready.begin(), kahn_ready.end());
    const NodeId v = kahn_ready.front();
    kahn_ready.erase(kahn_ready.begin());
    ++emitted;
    if (options.latency.latency(g.node(v).kind) > 0) {
      en.order.push_back(v);
    }
    for (const NodeId s : succ[v.value()]) {
      if (--indegree[s.value()] == 0) {
        kahn_ready.push_back(s);
      }
    }
  }
  detail::check<ScheduleError>(
      emitted == g.nodeCount(),
      "countSchedules: extra edges create a dependence cycle");
  return en;
}

}  // namespace

CountResult countSchedules(const cdfg::Cdfg& g,
                           const EnumerationOptions& options) {
  LOCWM_OBS_SPAN("sched.enum.count");
  Enumerator en = makeEnumerator(g, options);
  en.run(0);
  LOCWM_OBS_COUNT("sched.enum.states", en.steps);
  LOCWM_OBS_COUNT("sched.enum.schedules", en.count);
  LOCWM_OBS_COUNT("sched.enum.budget_hits", en.budget_hit ? 1 : 0);
  return CountResult{en.count, !en.budget_hit, en.steps};
}

void enumerateSchedules(const cdfg::Cdfg& g, const EnumerationOptions& options,
                        const std::function<bool(const Schedule&)>& visit) {
  LOCWM_OBS_SPAN("sched.enum.visit");
  Enumerator en = makeEnumerator(g, options);
  en.visit = &visit;
  en.run(0);
  LOCWM_OBS_COUNT("sched.enum.states", en.steps);
  LOCWM_OBS_COUNT("sched.enum.schedules", en.count);
}

PsiPair countPsi(const cdfg::Cdfg& g, NodeId src, NodeId dst,
                 const EnumerationOptions& options) {
  PsiPair psi;
  psi.without_edge = countSchedules(g, options);
  EnumerationOptions with = options;
  with.extra_edges.push_back({src, dst});
  psi.with_edge = countSchedules(g, with);
  return psi;
}

}  // namespace locwm::sched
