// Force-directed scheduling (Paulin & Knight) — the paper's reference
// time-constrained scheduler [14].
//
// Given a deadline, the scheduler balances the expected concurrency of each
// functional-unit class across control steps, minimizing the peak number of
// units the schedule implies.  We implement the classic formulation with
// distribution graphs and force minimization, evaluating each tentative
// assignment by full time-frame propagation (exact, O(n·T·E) per
// iteration) — easily fast enough for behavioral-synthesis-sized graphs.
#pragma once

#include <cstdint>
#include <optional>

#include "cdfg/graph.h"
#include "sched/latency.h"
#include "sched/schedule.h"

namespace locwm::sched {

/// Options of the force-directed scheduler.
struct ForceDirectedOptions {
  LatencyModel latency = LatencyModel::unit();
  /// Deadline in control steps; nullopt = critical path (tightest).
  std::optional<std::uint32_t> deadline;
  /// Honour temporal (watermark) edges.
  bool honor_temporal = true;
};

/// Schedules `g` within the deadline.  Throws ScheduleError when the
/// deadline is below the critical path.
[[nodiscard]] Schedule forceDirectedSchedule(
    const cdfg::Cdfg& g, const ForceDirectedOptions& options = {});

}  // namespace locwm::sched
