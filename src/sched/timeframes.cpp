#include "sched/timeframes.h"

#include <algorithm>

#include "cdfg/error.h"

namespace locwm::sched {

using cdfg::EdgeId;
using cdfg::NodeId;

TimeFrames::TimeFrames(const cdfg::Cdfg& g, const LatencyModel& lat,
                       std::optional<std::uint32_t> deadline,
                       bool includeTemporal) {
  const std::size_t n = g.nodeCount();
  asap_.assign(n, 0);
  alap_.assign(n, 0);

  const std::vector<NodeId> topo = g.topologicalOrder(includeTemporal);

  // Forward pass: ASAP start times.
  for (const NodeId v : topo) {
    std::uint32_t earliest = 0;
    for (const EdgeId e : g.inEdges(v)) {
      const cdfg::Edge& ed = g.edge(e);
      if (ed.kind == cdfg::EdgeKind::kTemporal && !includeTemporal) {
        continue;
      }
      const std::uint32_t gap = lat.edgeGap(g.node(ed.src).kind, ed.kind);
      earliest = std::max(earliest, asap_[ed.src.value()] + gap);
    }
    asap_[v.value()] = earliest;
  }

  // Critical path in steps: the earliest finish over all nodes.
  critical_ = 0;
  for (const NodeId v : topo) {
    critical_ = std::max(critical_,
                         asap_[v.value()] + lat.latency(g.node(v).kind));
  }

  deadline_ = deadline.value_or(critical_);
  detail::check<ScheduleError>(
      deadline_ >= critical_,
      "TimeFrames: deadline " + std::to_string(deadline_) +
          " below critical path " + std::to_string(critical_));

  // Backward pass: ALAP start times.  A node with no (considered)
  // successors may start as late as deadline - latency.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    std::uint32_t latest = deadline_ - lat.latency(g.node(v).kind);
    for (const EdgeId e : g.outEdges(v)) {
      const cdfg::Edge& ed = g.edge(e);
      if (ed.kind == cdfg::EdgeKind::kTemporal && !includeTemporal) {
        continue;
      }
      const std::uint32_t gap = lat.edgeGap(g.node(v).kind, ed.kind);
      const std::uint32_t succ_alap = alap_[ed.dst.value()];
      latest = std::min(latest, succ_alap >= gap ? succ_alap - gap : 0u);
    }
    alap_[v.value()] = latest;
  }
}

std::uint32_t TimeFrames::asap(NodeId n) const {
  detail::check<ScheduleError>(n.isValid() && n.value() < asap_.size(),
                               "asap(): node id out of range");
  return asap_[n.value()];
}

std::uint32_t TimeFrames::alap(NodeId n) const {
  detail::check<ScheduleError>(n.isValid() && n.value() < alap_.size(),
                               "alap(): node id out of range");
  return alap_[n.value()];
}

std::uint32_t TimeFrames::mobility(NodeId n) const {
  return alap(n) - asap(n);
}

bool TimeFrames::lifetimesOverlap(NodeId a, NodeId b) const {
  return asap(a) <= alap(b) && asap(b) <= alap(a);
}

}  // namespace locwm::sched
