#include "sched/force_directed.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "cdfg/error.h"
#include "obs/obs.h"
#include "sched/timeframes.h"

namespace locwm::sched {

using cdfg::EdgeId;
using cdfg::NodeId;

namespace {

struct Frames {
  std::vector<std::uint32_t> lo;
  std::vector<std::uint32_t> hi;
};

/// Tightens `f` to consistency with all dependence edges.  Returns false
/// when some node's window becomes empty.
bool propagate(const cdfg::Cdfg& g, const LatencyModel& lat,
               bool honorTemporal, Frames& f) {
  const std::vector<NodeId> topo = g.topologicalOrder(honorTemporal);
  for (const NodeId v : topo) {
    for (const EdgeId e : g.inEdges(v)) {
      const cdfg::Edge& ed = g.edge(e);
      if (ed.kind == cdfg::EdgeKind::kTemporal && !honorTemporal) {
        continue;
      }
      const std::uint32_t gap = lat.edgeGap(g.node(ed.src).kind, ed.kind);
      f.lo[v.value()] = std::max(f.lo[v.value()], f.lo[ed.src.value()] + gap);
    }
    if (f.lo[v.value()] > f.hi[v.value()]) {
      return false;
    }
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    for (const EdgeId e : g.outEdges(v)) {
      const cdfg::Edge& ed = g.edge(e);
      if (ed.kind == cdfg::EdgeKind::kTemporal && !honorTemporal) {
        continue;
      }
      const std::uint32_t gap = lat.edgeGap(g.node(v).kind, ed.kind);
      const std::uint32_t succ_hi = f.hi[ed.dst.value()];
      if (succ_hi < gap) {
        return false;
      }
      f.hi[v.value()] = std::min(f.hi[v.value()], succ_hi - gap);
    }
    if (f.lo[v.value()] > f.hi[v.value()]) {
      return false;
    }
  }
  return true;
}

/// Sum over classes and steps of the squared expected concurrency — the
/// scalar whose decrease the classic "force" measures.
double distributionCost(const cdfg::Cdfg& g, const LatencyModel& lat,
                        const Frames& f, std::uint32_t deadline) {
  std::vector<std::vector<double>> dg(
      cdfg::kFuClassCount, std::vector<double>(deadline + 1, 0.0));
  for (const NodeId v : g.allNodes()) {
    const cdfg::OpKind kind = g.node(v).kind;
    const std::uint32_t l = lat.latency(kind);
    if (l == 0) {
      continue;
    }
    const auto fu = static_cast<std::size_t>(cdfg::fuClass(kind));
    const std::uint32_t lo = f.lo[v.value()];
    const std::uint32_t hi = f.hi[v.value()];
    const double p = 1.0 / static_cast<double>(hi - lo + 1);
    for (std::uint32_t t = lo; t <= hi; ++t) {
      for (std::uint32_t k = 0; k < l && t + k < dg[fu].size(); ++k) {
        dg[fu][t + k] += p;
      }
    }
  }
  double cost = 0;
  for (const auto& series : dg) {
    for (const double x : series) {
      cost += x * x;
    }
  }
  return cost;
}

}  // namespace

Schedule forceDirectedSchedule(const cdfg::Cdfg& g,
                               const ForceDirectedOptions& options) {
  LOCWM_OBS_SPAN("sched.fd");
  const LatencyModel& lat = options.latency;
  const TimeFrames tf(g, lat, options.deadline, options.honor_temporal);
  const std::uint32_t deadline = tf.deadline();

  Frames frames;
  frames.lo.resize(g.nodeCount());
  frames.hi.resize(g.nodeCount());
  for (const NodeId v : g.allNodes()) {
    frames.lo[v.value()] = tf.asap(v);
    frames.hi[v.value()] = tf.alap(v);
  }

  std::vector<bool> fixed(g.nodeCount(), false);
  std::size_t remaining = 0;
  for (const NodeId v : g.allNodes()) {
    if (lat.latency(g.node(v).kind) > 0) {
      ++remaining;
    } else {
      fixed[v.value()] = true;  // pseudo-ops ride along with propagation
    }
  }

  while (remaining > 0) {
    double best_cost = std::numeric_limits<double>::infinity();
    NodeId best_node = NodeId::invalid();
    std::uint32_t best_step = 0;

    for (const NodeId v : g.allNodes()) {
      if (fixed[v.value()]) {
        continue;
      }
      for (std::uint32_t t = frames.lo[v.value()]; t <= frames.hi[v.value()];
           ++t) {
        Frames trial = frames;
        trial.lo[v.value()] = t;
        trial.hi[v.value()] = t;
        LOCWM_OBS_COUNT("sched.fd.trial_placements", 1);
        if (!propagate(g, lat, options.honor_temporal, trial)) {
          continue;
        }
        const double cost = distributionCost(g, lat, trial, deadline);
        if (cost < best_cost) {
          best_cost = cost;
          best_node = v;
          best_step = t;
        }
      }
    }
    detail::check<ScheduleError>(best_node.isValid(),
                                 "forceDirectedSchedule: no feasible move");
    frames.lo[best_node.value()] = best_step;
    frames.hi[best_node.value()] = best_step;
    const bool ok = propagate(g, lat, options.honor_temporal, frames);
    detail::check<ScheduleError>(ok,
                                 "forceDirectedSchedule: propagation failed");
    fixed[best_node.value()] = true;
    --remaining;
    LOCWM_OBS_COUNT("sched.fd.nodes_fixed", 1);
  }

  Schedule s(g.nodeCount());
  for (const NodeId v : g.allNodes()) {
    s.set(v, frames.lo[v.value()]);
  }
  return s;
}

}  // namespace locwm::sched
