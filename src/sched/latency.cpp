#include "sched/latency.h"

#include "cdfg/graph.h"

namespace locwm::sched {

LatencyModel LatencyModel::unit() {
  LatencyModel m;
  for (std::size_t i = 0; i < cdfg::kOpKindCount; ++i) {
    const auto kind = static_cast<cdfg::OpKind>(i);
    m.table_[i] = cdfg::isPseudoOp(kind) ? 0u : 1u;
  }
  return m;
}

LatencyModel LatencyModel::hyperDefault() {
  LatencyModel m = unit();
  m.setLatency(cdfg::OpKind::kMul, 2);
  m.setLatency(cdfg::OpKind::kDiv, 2);
  return m;
}

std::uint32_t LatencyModel::latency(cdfg::OpKind kind) const noexcept {
  return table_[static_cast<std::size_t>(kind)];
}

void LatencyModel::setLatency(cdfg::OpKind kind,
                              std::uint32_t cycles) noexcept {
  if (!cdfg::isPseudoOp(kind)) {
    table_[static_cast<std::size_t>(kind)] = cycles;
  }
}

std::uint32_t LatencyModel::edgeGap(cdfg::OpKind srcKind,
                                    cdfg::EdgeKind edgeKind) const noexcept {
  if (edgeKind == cdfg::EdgeKind::kTemporal) {
    return 1;
  }
  return latency(srcKind);
}

}  // namespace locwm::sched
