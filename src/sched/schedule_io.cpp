#include "sched/schedule_io.h"

#include <sstream>

#include "cdfg/error.h"

namespace locwm::sched {

void printSchedule(std::ostream& os, const cdfg::Cdfg& g, const Schedule& s) {
  for (const cdfg::NodeId v : g.allNodes()) {
    os << v.value() << ' ' << s.at(v) << '\n';
  }
}

std::string scheduleToString(const cdfg::Cdfg& g, const Schedule& s) {
  std::ostringstream os;
  printSchedule(os, g, s);
  return os.str();
}

namespace {

Schedule parseScheduleImpl(std::istream& is, std::size_t nodeCount,
                           std::vector<ScheduleParseIssue>* issues,
                           const std::string& source = {}) {
  Schedule s(nodeCount);
  std::string line;
  std::size_t lineno = 0;
  const std::string where = source.empty() ? "" : source + ": ";
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::uint32_t node = 0;
    std::uint32_t step = 0;
    if (!(ls >> node)) {
      continue;  // blank/comment line
    }
    if (!(ls >> step)) {
      throw ParseError(where + "schedule parse error at line " +
                       std::to_string(lineno) + ": missing step");
    }
    std::string trailing;
    if (ls >> trailing) {
      throw ParseError(where + "schedule parse error at line " +
                       std::to_string(lineno) + ": trailing tokens");
    }
    if (node >= nodeCount) {
      if (!issues) {
        throw ParseError(where + "schedule parse error at line " +
                         std::to_string(lineno) + ": node " +
                         std::to_string(node) + " out of range");
      }
      issues->push_back({lineno, node, step, source});
      continue;
    }
    s.set(cdfg::NodeId(node), step);
  }
  return s;
}

}  // namespace

Schedule parseSchedule(std::istream& is, std::size_t nodeCount) {
  return parseScheduleImpl(is, nodeCount, nullptr);
}

Schedule parseSchedule(std::istream& is, std::size_t nodeCount,
                       std::vector<ScheduleParseIssue>& issues,
                       const std::string& source) {
  return parseScheduleImpl(is, nodeCount, &issues, source);
}

Schedule parseScheduleString(const std::string& text, std::size_t nodeCount) {
  std::istringstream is(text);
  return parseSchedule(is, nodeCount);
}

}  // namespace locwm::sched
