// Text serialization of schedules — the artifact that carries a scheduling
// watermark once the temporal edges are stripped, so it needs a durable
// interchange form.  Format: one "<node-index> <start-step>" pair per
// line, '#' comments allowed; every node of the design must be assigned.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "cdfg/graph.h"
#include "sched/schedule.h"

namespace locwm::sched {

/// Writes `s` (complete over `g`) in the text format.
void printSchedule(std::ostream& os, const cdfg::Cdfg& g, const Schedule& s);

/// Renders to a string.
[[nodiscard]] std::string scheduleToString(const cdfg::Cdfg& g,
                                           const Schedule& s);

/// Parses a schedule for a design with `nodeCount` nodes.  Throws
/// ParseError on malformed input or out-of-range node indices.  The result
/// may be partial; validate() reports unassigned nodes.
[[nodiscard]] Schedule parseSchedule(std::istream& is, std::size_t nodeCount);
[[nodiscard]] Schedule parseScheduleString(const std::string& text,
                                           std::size_t nodeCount);

}  // namespace locwm::sched
