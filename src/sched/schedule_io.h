// Text serialization of schedules — the artifact that carries a scheduling
// watermark once the temporal edges are stripped, so it needs a durable
// interchange form.  Format: one "<node-index> <start-step>" pair per
// line, '#' comments allowed; every node of the design must be assigned.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "cdfg/graph.h"
#include "sched/schedule.h"

namespace locwm::sched {

/// Writes `s` (complete over `g`) in the text format.
void printSchedule(std::ostream& os, const cdfg::Cdfg& g, const Schedule& s);

/// Renders to a string.
[[nodiscard]] std::string scheduleToString(const cdfg::Cdfg& g,
                                           const Schedule& s);

/// One out-of-range assignment found while parsing in lenient mode: the
/// entry is dropped and recorded so a linter can report it with a stable
/// code instead of stopping at the first problem.
struct ScheduleParseIssue {
  std::size_t line = 0;     ///< 1-based source line
  std::uint32_t node = 0;   ///< node index outside [0, nodeCount)
  std::uint32_t step = 0;   ///< step the entry assigned
  std::string path;         ///< source artifact ("" when anonymous)
};

/// Parses a schedule for a design with `nodeCount` nodes.  Throws
/// ParseError on malformed input or out-of-range node indices.  The result
/// may be partial; validate() reports unassigned nodes.
[[nodiscard]] Schedule parseSchedule(std::istream& is, std::size_t nodeCount);
/// Lenient overload: out-of-range node indices are recorded in `issues`
/// and skipped instead of throwing.  Syntax errors still throw.  `source`
/// names the artifact: stamped on issues, prefixed to ParseError messages.
[[nodiscard]] Schedule parseSchedule(std::istream& is, std::size_t nodeCount,
                                     std::vector<ScheduleParseIssue>& issues,
                                     const std::string& source = {});
[[nodiscard]] Schedule parseScheduleString(const std::string& text,
                                           std::size_t nodeCount);

}  // namespace locwm::sched
