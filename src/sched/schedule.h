// Schedule representation and validation.
//
// A Schedule maps every CDFG node to the control step in which it starts.
// Pseudo-operations also receive a step (inputs at 0, outputs at the step
// their producer completes) so that validation is uniform.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cdfg/graph.h"
#include "sched/latency.h"

namespace locwm::sched {

/// Start-step assignment for every node of one graph.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t nodeCount) : start_(nodeCount, kUnset) {}

  /// Assigns node `n` to start at `step`.
  void set(cdfg::NodeId n, std::uint32_t step);

  /// True when `n` has been assigned.
  [[nodiscard]] bool isSet(cdfg::NodeId n) const;

  /// Start step of `n`; throws ScheduleError when unset.
  [[nodiscard]] std::uint32_t at(cdfg::NodeId n) const;

  [[nodiscard]] std::size_t nodeCount() const noexcept { return start_.size(); }

  /// Number of control steps used: 1 + max over real ops of
  /// (start + latency - 1).  Zero for an empty schedule.
  [[nodiscard]] std::uint32_t makespan(const cdfg::Cdfg& g,
                                       const LatencyModel& lat) const;

  friend bool operator==(const Schedule& a, const Schedule& b) {
    return a.start_ == b.start_;
  }

 private:
  static constexpr std::int64_t kUnset = -1;
  std::vector<std::int64_t> start_;
};

/// Violation discovered by validate(); empty optional means the schedule is
/// feasible.
struct ScheduleViolation {
  cdfg::EdgeId edge;      ///< offending edge (invalid when unassigned node)
  cdfg::NodeId node;      ///< unassigned node (invalid when edge violation)
  std::string message;    ///< human-readable diagnosis
};

/// Checks every node is assigned and every edge constraint holds:
/// data/control: start(dst) >= start(src) + latency(src);
/// temporal (when `checkTemporal`): start(dst) >= start(src) + 1.
[[nodiscard]] std::optional<ScheduleViolation> validate(
    const cdfg::Cdfg& g, const Schedule& s, const LatencyModel& lat,
    bool checkTemporal = true);

/// Per-functional-unit-class concurrent usage profile.
/// usage[fu][step] = number of ops of that class executing in `step`.
struct ResourceProfile {
  std::vector<std::vector<std::uint32_t>> usage;  // [FuClass][step]
  /// Peak concurrent usage per class — the module count scheduling implies.
  [[nodiscard]] std::vector<std::uint32_t> peaks() const;
};

/// Computes the resource profile of a complete schedule.
[[nodiscard]] ResourceProfile resourceProfile(const cdfg::Cdfg& g,
                                              const Schedule& s,
                                              const LatencyModel& lat);

/// Per-class functional-unit budget; 0 means "unlimited".
struct ResourceLimits {
  std::array<std::uint32_t, cdfg::kFuClassCount> limit{};

  [[nodiscard]] static ResourceLimits unlimited() { return ResourceLimits{}; }
  [[nodiscard]] static ResourceLimits of(std::uint32_t alu, std::uint32_t mul,
                                         std::uint32_t mem = 0,
                                         std::uint32_t branch = 0);
  [[nodiscard]] std::uint32_t forClass(cdfg::FuClass fu) const noexcept {
    return limit[static_cast<std::size_t>(fu)];
  }
};

/// True when the schedule respects `limits` in every step.
[[nodiscard]] bool respectsLimits(const ResourceProfile& profile,
                                  const ResourceLimits& limits);

}  // namespace locwm::sched
