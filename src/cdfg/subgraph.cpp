#include "cdfg/subgraph.h"

#include <algorithm>

#include "obs/obs.h"

namespace locwm::cdfg {

Cdfg inducedSubgraph(const Cdfg& g, const std::vector<NodeId>& nodes,
                     NodeMap* outMap) {
  LOCWM_OBS_COUNT("cdfg.subgraph.induced", 1);
  Cdfg sub;
  NodeMap map;
  map.reserve(nodes.size());
  for (const NodeId v : nodes) {
    detail::check<GraphError>(!map.contains(v),
                              "inducedSubgraph(): duplicate node in set");
    map.emplace(v, sub.addNode(g.node(v).kind, g.node(v).name));
  }
  for (const EdgeId e : g.allEdges()) {
    const Edge& ed = g.edge(e);
    const auto s = map.find(ed.src);
    const auto d = map.find(ed.dst);
    if (s != map.end() && d != map.end()) {
      sub.addEdge(s->second, d->second, ed.kind);
    }
  }
  if (outMap != nullptr) {
    *outMap = std::move(map);
  }
  return sub;
}

NodeMap embed(Cdfg& host, const Cdfg& part,
              const std::vector<std::pair<NodeId, NodeId>>& stitches) {
  NodeMap map;
  map.reserve(part.nodeCount());
  for (const NodeId v : part.allNodes()) {
    map.emplace(v, host.addNode(part.node(v).kind, part.node(v).name));
  }
  for (const EdgeId e : part.allEdges()) {
    const Edge& ed = part.edge(e);
    host.addEdge(map.at(ed.src), map.at(ed.dst), ed.kind);
  }
  for (const auto& [hostNode, partNode] : stitches) {
    host.addEdge(hostNode, map.at(partNode), EdgeKind::kData);
  }
  return map;
}

Cdfg cutPartition(const Cdfg& g, NodeId seed, std::uint32_t radius,
                  NodeMap* outMap) {
  std::vector<bool> seen(g.nodeCount(), false);
  std::vector<NodeId> keep;
  std::vector<NodeId> frontier{seed};
  seen[seed.value()] = true;
  keep.push_back(seed);
  for (std::uint32_t d = 0; d < radius && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (const NodeId v : frontier) {
      auto visit = [&](NodeId u) {
        if (!seen[u.value()]) {
          seen[u.value()] = true;
          next.push_back(u);
        }
      };
      for (const NodeId p : g.predecessors(v, /*includeTemporal=*/true)) {
        visit(p);
      }
      for (const NodeId s : g.successors(v, /*includeTemporal=*/true)) {
        visit(s);
      }
    }
    std::sort(next.begin(), next.end());
    keep.insert(keep.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  std::sort(keep.begin(), keep.end());
  return inducedSubgraph(g, keep, outMap);
}

Cdfg relabel(const Cdfg& g, const std::vector<std::uint32_t>& permutation,
             NodeMap* outMap) {
  detail::check<GraphError>(permutation.size() == g.nodeCount(),
                            "relabel(): permutation size mismatch");
  std::vector<std::uint32_t> inverse(permutation.size());
  std::vector<bool> hit(permutation.size(), false);
  for (std::size_t i = 0; i < permutation.size(); ++i) {
    const std::uint32_t p = permutation[i];
    detail::check<GraphError>(p < permutation.size() && !hit[p],
                              "relabel(): not a permutation");
    hit[p] = true;
    inverse[p] = static_cast<std::uint32_t>(i);
  }
  Cdfg out;
  NodeMap map;
  for (std::size_t pos = 0; pos < inverse.size(); ++pos) {
    const NodeId old(inverse[pos]);
    map.emplace(old, out.addNode(g.node(old).kind, /*name=*/{}));
  }
  // Edge insertion order is also permuted (sorted by new endpoints) so the
  // relabeled graph shares no incidental ordering with the original.
  std::vector<Edge> edges;
  edges.reserve(g.edgeCount());
  for (const EdgeId e : g.allEdges()) {
    const Edge& ed = g.edge(e);
    edges.push_back(Edge{map.at(ed.src), map.at(ed.dst), ed.kind});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst, a.kind) < std::tie(b.src, b.dst, b.kind);
  });
  for (const Edge& ed : edges) {
    out.addEdge(ed.src, ed.dst, ed.kind);
  }
  if (outMap != nullptr) {
    *outMap = std::move(map);
  }
  return out;
}

}  // namespace locwm::cdfg
