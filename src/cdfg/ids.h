// Strong identifier types used throughout the library.
//
// Node/edge identifiers are thin wrappers around uint32_t so that the type
// system prevents mixing a node index with an edge index or a control step.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace locwm {

namespace detail {

/// CRTP-free strong id: a tagged 32-bit index with an explicit invalid
/// sentinel.  Tag is an empty struct used only to distinguish id families.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  /// Sentinel distinct from every valid id.
  [[nodiscard]] static constexpr StrongId invalid() {
    return StrongId(std::numeric_limits<value_type>::max());
  }

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool isValid() const {
    return value_ != std::numeric_limits<value_type>::max();
  }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }

 private:
  value_type value_ = std::numeric_limits<value_type>::max();
};

}  // namespace detail

struct NodeIdTag {};
struct EdgeIdTag {};
struct TemplateIdTag {};
struct MatchIdTag {};

/// Identifies a CDFG node (operation).
using NodeId = detail::StrongId<NodeIdTag>;
/// Identifies a CDFG edge (data, control, or temporal).
using EdgeId = detail::StrongId<EdgeIdTag>;
/// Identifies a template (module) in a template library.
using TemplateId = detail::StrongId<TemplateIdTag>;
/// Identifies one enumerated matching in a matching list.
using MatchId = detail::StrongId<MatchIdTag>;

/// The id family is shared across all sub-namespaces; re-export them where
/// client code qualifies through the module namespace.
namespace cdfg {
using locwm::EdgeId;
using locwm::MatchId;
using locwm::NodeId;
using locwm::TemplateId;
}  // namespace cdfg

}  // namespace locwm

namespace std {

template <typename Tag>
struct hash<locwm::detail::StrongId<Tag>> {
  size_t operator()(locwm::detail::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

}  // namespace std
