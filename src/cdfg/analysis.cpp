#include "cdfg/analysis.h"

#include <algorithm>
#include <queue>

namespace locwm::cdfg {

namespace {

/// Weight a node contributes to paths: pseudo-ops are free.
std::uint32_t nodeWeight(const Cdfg& g, NodeId n) {
  return isPseudoOp(g.node(n).kind) ? 0u : 1u;
}

}  // namespace

StructuralAnalysis::StructuralAnalysis(const Cdfg& graph)
    : graph_(&graph), csr_(graph) {
  const std::size_t n = graph.nodeCount();
  level_.assign(n, 0);
  height_.assign(n, 0);

  const std::vector<NodeId> topo = graph.topologicalOrder(/*includeTemporal=*/false);

  // Temporal edges are excluded throughout (see class comment), so every
  // neighbour walk uses the data+control CSR segment.
  for (const NodeId v : topo) {
    std::uint32_t best = 0;
    for (const NodeId p : csr_.predecessors(v, EdgeSel::kDataControl)) {
      best = std::max(best, level_[p.value()]);
    }
    level_[v.value()] = best + nodeWeight(graph, v);
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    std::uint32_t best = 0;
    for (const NodeId s : csr_.successors(v, EdgeSel::kDataControl)) {
      best = std::max(best, height_[s.value()]);
    }
    height_[v.value()] = best + nodeWeight(graph, v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    critical_path_ = std::max(critical_path_, level_[i]);
  }
}

std::uint32_t StructuralAnalysis::level(NodeId n) const {
  detail::check<GraphError>(n.isValid() && n.value() < level_.size(),
                            "level(): node id out of range");
  return level_[n.value()];
}

std::uint32_t StructuralAnalysis::height(NodeId n) const {
  detail::check<GraphError>(n.isValid() && n.value() < height_.size(),
                            "height(): node id out of range");
  return height_[n.value()];
}

std::uint32_t StructuralAnalysis::laxity(NodeId n) const {
  // level() already counts the node itself (when real); height() counts it
  // again, so subtract one node weight to avoid double counting.
  return level(n) + height(n) - nodeWeight(*graph_, n);
}

std::uint32_t StructuralAnalysis::slack(NodeId n) const {
  const std::uint32_t lax = laxity(n);
  return critical_path_ >= lax ? critical_path_ - lax : 0u;
}

std::size_t StructuralAnalysis::transitiveFaninCount(NodeId n,
                                                     std::uint32_t dist) const {
  return faninTree(n, dist).size() - 1;  // exclude n itself
}

std::vector<NodeId> StructuralAnalysis::faninTree(NodeId n,
                                                  std::uint32_t dist) const {
  detail::check<GraphError>(n.isValid() && n.value() < graph_->nodeCount(),
                            "faninTree(): node id out of range");
  std::vector<bool> seen(graph_->nodeCount(), false);
  std::vector<NodeId> result;
  // Frontier-by-frontier BFS so distances are exact; within a frontier,
  // nodes are visited in ascending id order for determinism.
  std::vector<NodeId> frontier{n};
  seen[n.value()] = true;
  result.push_back(n);
  for (std::uint32_t d = 0; d < dist && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (const NodeId v : frontier) {
      for (const NodeId p : csr_.predecessors(v, EdgeSel::kDataControl)) {
        if (!seen[p.value()]) {
          seen[p.value()] = true;
          next.push_back(p);
        }
      }
    }
    std::sort(next.begin(), next.end());
    result.insert(result.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return result;
}

std::vector<std::uint8_t> StructuralAnalysis::functionalitySignature(
    NodeId n, std::uint32_t dist) const {
  const std::vector<NodeId> tree = faninTree(n, dist);
  std::vector<std::uint8_t> sig;
  sig.reserve(tree.size());
  for (const NodeId v : tree) {
    if (v == n) {
      continue;
    }
    sig.push_back(functionalityId(graph_->node(v).kind));
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace locwm::cdfg
