#include "cdfg/dot.h"

#include <sstream>
#include <unordered_set>

namespace locwm::cdfg {

void writeDot(std::ostream& os, const Cdfg& g, const DotOptions& options) {
  std::unordered_set<NodeId> marked(options.highlight.begin(),
                                    options.highlight.end());
  os << "digraph " << options.name << " {\n";
  os << "  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n";
  for (const NodeId v : g.allNodes()) {
    const Node& n = g.node(v);
    os << "  n" << v.value() << " [label=\"";
    if (!n.name.empty()) {
      os << n.name << "\\n";
    }
    os << opName(n.kind) << "\"";
    if (marked.contains(v)) {
      os << ", style=filled, fillcolor=lightgoldenrod";
    }
    os << "];\n";
  }
  for (const EdgeId e : g.allEdges()) {
    const Edge& ed = g.edge(e);
    os << "  n" << ed.src.value() << " -> n" << ed.dst.value();
    switch (ed.kind) {
      case EdgeKind::kData:
        break;
      case EdgeKind::kControl:
        os << " [style=dotted]";
        break;
      case EdgeKind::kTemporal:
        os << " [style=dashed, color=red, constraint=true]";
        break;
    }
    os << ";\n";
  }
  os << "}\n";
}

std::string toDot(const Cdfg& g, const DotOptions& options) {
  std::ostringstream os;
  writeDot(os, g, options);
  return os.str();
}

}  // namespace locwm::cdfg
