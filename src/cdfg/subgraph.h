// Subgraph extraction, embedding, and cutting.
//
// These model the adversarial/design scenarios of the paper's introduction:
// a protected core being *embedded* into a larger system-on-chip design, or
// a valuable *partition* being cut out of a protected design.  Local
// watermark detection must survive both, which the benches exercise.
#pragma once

#include <unordered_map>
#include <vector>

#include "cdfg/graph.h"
#include "cdfg/ids.h"

namespace locwm::cdfg {

/// Mapping from node ids of one graph to node ids of another.
using NodeMap = std::unordered_map<NodeId, NodeId>;

/// Returns the subgraph of `g` induced by `nodes` (edges with both
/// endpoints in the set are kept, all kinds).  `outMap`, when non-null,
/// receives the old→new node mapping.
[[nodiscard]] Cdfg inducedSubgraph(const Cdfg& g,
                                   const std::vector<NodeId>& nodes,
                                   NodeMap* outMap = nullptr);

/// Copies every node and edge of `part` into `host`, returning the
/// part→host node mapping.  Optionally stitches the embedded part into the
/// host: each (hostNode → partNode) pair in `stitches` adds a data edge
/// from an existing host node to an embedded node, modelling the part
/// consuming host signals.
NodeMap embed(Cdfg& host, const Cdfg& part,
              const std::vector<std::pair<NodeId, NodeId>>& stitches = {});

/// Extracts the partition of `g` within (undirected) radius `radius` of
/// `seed` — an adversary cutting a valuable block out of a larger design.
/// `outMap` receives the old→new mapping when non-null.
[[nodiscard]] Cdfg cutPartition(const Cdfg& g, NodeId seed,
                                std::uint32_t radius,
                                NodeMap* outMap = nullptr);

/// Deterministically relabels `g`: node ids are permuted by `permutation`
/// (permutation[i] = new position of old node i) and names are dropped.
/// Models a reverse-engineered netlist in which the author's indices and
/// labels are gone but structure is intact.
[[nodiscard]] Cdfg relabel(const Cdfg& g,
                           const std::vector<std::uint32_t>& permutation,
                           NodeMap* outMap = nullptr);

}  // namespace locwm::cdfg
