#include "cdfg/ordering.h"

#include <algorithm>
#include <tuple>

#include "obs/obs.h"

namespace locwm::cdfg {

namespace {

/// Refinement key of one node in one round: its current rank plus the
/// sorted multisets of its predecessor and successor ranks (within the
/// ordered node set).  Rank vectors are ordinal, so the keys — and the
/// ranks derived from them — are identical on any isomorphic copy of the
/// structure, which is what detection-by-re-derivation requires.
struct RefineKey {
  std::uint32_t own = 0;
  std::vector<std::uint32_t> preds;
  std::vector<std::uint32_t> succs;

  friend bool operator<(const RefineKey& a, const RefineKey& b) {
    return std::tie(a.own, a.preds, a.succs) <
           std::tie(b.own, b.preds, b.succs);
  }
  friend bool operator==(const RefineKey& a, const RefineKey& b) {
    return a.own == b.own && a.preds == b.preds && a.succs == b.succs;
  }
};

}  // namespace

NodeOrdering computeOrdering(const StructuralAnalysis& analysis,
                             const std::vector<NodeId>& nodes,
                             std::uint32_t maxDepth) {
  // The base colour implements the paper's first criteria directly:
  // C1 (level) refined by the node's own functionality (the D0 signature).
  // The iterative colour refinement below then subsumes the C2/C3
  // neighbourhood deepening — each round folds the ranks of all fanin
  // nodes one step further away — and additionally folds in fanout
  // structure, which fanin-only criteria cannot see (two taps feeding the
  // same adder are separated by *who consumes them*, not by their inputs).
  LOCWM_OBS_SPAN("cdfg.ordering");
  const auto& g = analysis.graph();
  const CsrView& csr = analysis.csr();
  NodeOrdering result;
  result.ordered = nodes;
  const std::size_t n = nodes.size();

  // Membership map: graph node value -> index in `nodes`, or npos.
  constexpr std::uint32_t kOutside = 0xFFFFFFFFu;
  std::vector<std::uint32_t> index_of(g.nodeCount(), kOutside);
  for (std::size_t i = 0; i < n; ++i) {
    index_of[nodes[i].value()] = static_cast<std::uint32_t>(i);
  }

  // ranks[i] = current colour of nodes[i].
  std::vector<std::uint32_t> ranks(n, 0);
  {
    std::vector<std::pair<std::pair<std::uint32_t, std::uint8_t>,
                          std::size_t>>
        base;
    base.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      base.push_back({{analysis.level(nodes[i]),
                       functionalityId(csr.kind(nodes[i]))},
                      i});
    }
    std::sort(base.begin(), base.end());
    std::uint32_t r = 0;
    for (std::size_t k = 0; k < base.size(); ++k) {
      if (k > 0 && base[k].first != base[k - 1].first) {
        ++r;
      }
      ranks[base[k].second] = r;
    }
  }

  auto classCount = [&]() {
    return ranks.empty()
               ? std::size_t{0}
               : static_cast<std::size_t>(
                     *std::max_element(ranks.begin(), ranks.end())) +
                     1;
  };

  std::uint32_t depth = 0;
  std::size_t classes = classCount();
  while (classes < n && depth < maxDepth) {
    ++depth;
    std::vector<std::pair<RefineKey, std::size_t>> keyed;
    keyed.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      RefineKey key;
      key.own = ranks[i];
      // CSR spans instead of the builder's per-call vectors: this loop
      // runs rounds × nodes times and dominated the refinement cost.
      // The keys sort their rank multisets, so the kind-grouped span
      // order is immaterial.
      for (const NodeId p :
           csr.predecessors(nodes[i], EdgeSel::kDataControl)) {
        const std::uint32_t j = index_of[p.value()];
        if (j != kOutside) {
          key.preds.push_back(ranks[j]);
        }
      }
      for (const NodeId s : csr.successors(nodes[i], EdgeSel::kDataControl)) {
        const std::uint32_t j = index_of[s.value()];
        if (j != kOutside) {
          key.succs.push_back(ranks[j]);
        }
      }
      std::sort(key.preds.begin(), key.preds.end());
      std::sort(key.succs.begin(), key.succs.end());
      keyed.push_back({std::move(key), i});
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::uint32_t r = 0;
    for (std::size_t k = 0; k < keyed.size(); ++k) {
      if (k > 0 && !(keyed[k].first == keyed[k - 1].first)) {
        ++r;
      }
      ranks[keyed[k].second] = r;
    }
    const std::size_t now = classCount();
    if (now == classes) {
      break;  // refinement converged; remaining ties are automorphic
    }
    classes = now;
  }

  // Order nodes by final rank; ties (automorphic nodes) fall back to node
  // id, which keeps the output deterministic but NOT canonical — callers
  // must consult `ranks`/`unique` before relying on tied positions.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (ranks[a] != ranks[b]) {
      return ranks[a] < ranks[b];
    }
    return nodes[a] < nodes[b];
  });
  NodeOrdering out;
  out.ordered.reserve(n);
  out.ranks.reserve(n);
  for (const std::size_t i : perm) {
    out.ordered.push_back(nodes[i]);
    out.ranks.push_back(ranks[i]);
  }
  out.unique = classes == n;
  out.max_depth_used = depth;
  LOCWM_OBS_COUNT("cdfg.ordering.refine_rounds", depth);
  LOCWM_OBS_COUNT("cdfg.ordering.runs", 1);
  return out;
}

NodeOrdering computeOrdering(const StructuralAnalysis& analysis,
                             std::uint32_t maxDepth) {
  return computeOrdering(analysis, analysis.graph().allNodes(), maxDepth);
}

}  // namespace locwm::cdfg
