#include "cdfg/delta.h"

#include <algorithm>

#include "cdfg/error.h"

namespace locwm::cdfg {

std::string_view editOpKindName(EditOpKind kind) noexcept {
  switch (kind) {
    case EditOpKind::kAddNode:
      return "add-node";
    case EditOpKind::kRemoveNode:
      return "remove-node";
    case EditOpKind::kAddEdge:
      return "add-edge";
    case EditOpKind::kRemoveEdge:
      return "remove-edge";
  }
  return "?";
}

EditOp EditOp::addNode(OpKind op, std::string name) {
  EditOp e;
  e.kind = EditOpKind::kAddNode;
  e.op_kind = op;
  e.name = std::move(name);
  return e;
}

EditOp EditOp::removeNode(NodeId node) {
  EditOp e;
  e.kind = EditOpKind::kRemoveNode;
  e.node = node;
  return e;
}

EditOp EditOp::addEdge(NodeId src, NodeId dst, EdgeKind kind) {
  EditOp e;
  e.kind = EditOpKind::kAddEdge;
  e.src = src;
  e.dst = dst;
  e.edge_kind = kind;
  return e;
}

EditOp EditOp::removeEdge(NodeId src, NodeId dst, EdgeKind kind) {
  EditOp e;
  e.kind = EditOpKind::kRemoveEdge;
  e.src = src;
  e.dst = dst;
  e.edge_kind = kind;
  return e;
}

void CsrDelta::addEdge(EdgeId id, const Edge& e) {
  out_add_[e.src.value()].push_back(AddedHalfEdge{e.dst, id, e.kind});
  in_add_[e.dst.value()].push_back(AddedHalfEdge{e.src, id, e.kind});
  ++overlay_;
}

void CsrDelta::removeEdge(EdgeId id, const Edge& e) {
  const auto out_it = out_add_.find(e.src.value());
  if (out_it != out_add_.end()) {
    auto& outs = out_it->second;
    const auto pos = std::find_if(
        outs.begin(), outs.end(),
        [&](const AddedHalfEdge& h) { return h.id == id; });
    if (pos != outs.end()) {
      // The edge never reached the base arena: drop both overlay halves.
      outs.erase(pos);
      auto& ins = in_add_[e.dst.value()];
      ins.erase(std::find_if(
          ins.begin(), ins.end(),
          [&](const AddedHalfEdge& h) { return h.id == id; }));
      --overlay_;
      return;
    }
  }
  removed_.insert(id.value());
}

namespace {

/// Patch-vs-relower policy: a node add invalidates the base offset tables
/// outright; otherwise patch until the overlay would slow every traversal
/// noticeably.
bool shouldRelower(const CsrDelta& csr, bool node_added) {
  if (node_added) {
    return true;
  }
  const std::size_t base_edges = csr.base().edgeCount();
  const std::size_t limit = std::max<std::size_t>(64, base_edges / 8);
  return csr.overlaySize() + csr.removedCount() > limit;
}

}  // namespace

AppliedDelta applyDelta(Cdfg& g, CsrDelta& csr, const EditDelta& delta) {
  AppliedDelta out;
  for (std::size_t i = 0; i < delta.ops.size(); ++i) {
    const EditOp& op = delta.ops[i];
    try {
      switch (op.kind) {
        case EditOpKind::kAddNode: {
          const NodeId id = g.addNode(op.op_kind, op.name);
          out.added_nodes.push_back(id);
          out.touched_nodes.push_back(id);
          break;
        }
        case EditOpKind::kRemoveNode: {
          detail::check<GraphError>(
              op.node.isValid() && op.node.value() < g.nodeCount() &&
                  g.nodeAlive(op.node),
              "remove-node: no such live node");
          // Snapshot the incident lists before the graph drops them.
          std::vector<EdgeId> incident(g.outEdges(op.node));
          incident.insert(incident.end(), g.inEdges(op.node).begin(),
                          g.inEdges(op.node).end());
          for (const EdgeId e : incident) {
            const Edge ed = g.edge(e);
            out.removed_edge_ids.push_back(e);
            out.removed_edges.push_back(ed);
            out.touched_nodes.push_back(ed.src);
            out.touched_nodes.push_back(ed.dst);
            csr.removeEdge(e, ed);
          }
          g.removeNode(op.node);
          out.removed_nodes.push_back(op.node);
          out.touched_nodes.push_back(op.node);
          break;
        }
        case EditOpKind::kAddEdge: {
          const EdgeId id = g.addEdge(op.src, op.dst, op.edge_kind);
          csr.addEdge(id, g.edge(id));
          out.added_edge_ids.push_back(id);
          out.touched_nodes.push_back(op.src);
          out.touched_nodes.push_back(op.dst);
          break;
        }
        case EditOpKind::kRemoveEdge: {
          const EdgeId id = g.findEdge(op.src, op.dst, op.edge_kind);
          detail::check<GraphError>(id.isValid(),
                                    "remove-edge: no such live edge");
          const Edge ed = g.edge(id);
          g.removeEdge(id);
          csr.removeEdge(id, ed);
          out.removed_edge_ids.push_back(id);
          out.removed_edges.push_back(ed);
          out.touched_nodes.push_back(op.src);
          out.touched_nodes.push_back(op.dst);
          break;
        }
      }
    } catch (const GraphError& err) {
      out.rejected.push_back(RejectedOp{i, err.what()});
    }
  }

  std::sort(out.touched_nodes.begin(), out.touched_nodes.end());
  out.touched_nodes.erase(
      std::unique(out.touched_nodes.begin(), out.touched_nodes.end()),
      out.touched_nodes.end());

  if (out.any() && shouldRelower(csr, !out.added_nodes.empty())) {
    csr.rebase();
    out.relowered = true;
  }
  return out;
}

}  // namespace locwm::cdfg
