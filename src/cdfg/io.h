// Plain-text serialization of CDFGs.
//
// Format (line oriented, '#' comments):
//
//   cdfg v1
//   node <index> <opname> [label]
//   edge <src-index> <dst-index> <data|control|temporal>
//
// Node indices must be dense and ascending.  The format round-trips
// exactly: parse(print(g)) is structurally identical to g.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "cdfg/graph.h"

namespace locwm::cdfg {

/// Writes `g` in the text format described above.
void print(std::ostream& os, const Cdfg& g);

/// Renders `g` to a string.
[[nodiscard]] std::string printToString(const Cdfg& g);

/// Parses a graph from the text format.  Throws ParseError on malformed
/// input.
[[nodiscard]] Cdfg parse(std::istream& is);

/// Parses a graph from a string.
[[nodiscard]] Cdfg parseString(const std::string& text);

}  // namespace locwm::cdfg
