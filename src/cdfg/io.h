// Plain-text serialization of CDFGs.
//
// Format (line oriented, '#' comments):
//
//   cdfg v1
//   node <index> <opname> [label]
//   edge <src-index> <dst-index> <data|control|temporal>
//
// Node indices must be dense and ascending.  The format round-trips
// exactly: parse(print(g)) is structurally identical to g.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "cdfg/graph.h"

namespace locwm::cdfg {

/// Writes `g` in the text format described above.
void print(std::ostream& os, const Cdfg& g);

/// Renders `g` to a string.
[[nodiscard]] std::string printToString(const Cdfg& g);

/// One structural problem found while parsing in lenient mode (see the
/// two-argument parse() overload).  The offending edge is dropped and
/// parsing continues, so a linter can report every problem with a stable
/// diagnostic code instead of stopping at the first.
struct ParseIssue {
  enum class Kind : std::uint8_t {
    kDanglingEdge,       ///< edge endpoint is not a declared node
    kSelfEdge,           ///< edge with src == dst
    kDuplicateTemporal,  ///< the same temporal edge listed twice
    kCycle,              ///< dependence cycle (all edges are kept)
  };
  Kind kind = Kind::kDanglingEdge;
  std::size_t line = 0;  ///< 1-based source line (0 for kCycle)
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  EdgeKind edge_kind = EdgeKind::kData;
  /// Source artifact the issue was found in (the `source` argument of the
  /// lenient parse; empty when parsing anonymous text).  Carried on the
  /// issue itself so multi-file consumers — project lint, corpus scan —
  /// stay attributable without a side table.
  std::string path;
};

/// Parses a graph from the text format.  Throws ParseError on malformed
/// input.
[[nodiscard]] Cdfg parse(std::istream& is);

/// Lenient parse for static analysis: structural violations (dangling or
/// self edges, duplicate temporal edges, cycles) are recorded in `issues`
/// instead of throwing; offending edges are dropped, cyclic edge sets are
/// kept.  Syntax errors still throw ParseError.  `source` names the
/// artifact being parsed: it is stamped on every recorded issue and
/// prefixed to thrown ParseError messages.
[[nodiscard]] Cdfg parse(std::istream& is, std::vector<ParseIssue>& issues,
                         const std::string& source = {});

/// Parses a graph from a string.
[[nodiscard]] Cdfg parseString(const std::string& text);
[[nodiscard]] Cdfg parseString(const std::string& text,
                               std::vector<ParseIssue>& issues,
                               const std::string& source = {});

}  // namespace locwm::cdfg
