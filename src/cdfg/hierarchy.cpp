#include "cdfg/hierarchy.h"

#include <algorithm>

#include "cdfg/error.h"
#include "cdfg/subgraph.h"

namespace locwm::cdfg {

HierarchicalCdfg::HierarchicalCdfg(Cdfg body) {
  body.checkAcyclic();
  Region root;
  root.region_kind = RegionKind::kBody;
  root.graph = std::move(body);
  regions_.push_back(std::move(root));
}

RegionId HierarchicalCdfg::addRegion(RegionId parent, RegionKind kind,
                                     Cdfg body,
                                     std::vector<PortBinding> bindings,
                                     std::vector<PortBinding> carried) {
  checkRegion(parent);
  body.checkAcyclic();
  for (const PortBinding& b : bindings) {
    detail::check<GraphError>(
        b.from.isValid() &&
            b.from.value() < regions_[parent.value()].graph.nodeCount(),
        "addRegion: binding source outside the parent region");
    detail::check<GraphError>(
        b.to.isValid() && b.to.value() < body.nodeCount() &&
            body.node(b.to).kind == OpKind::kInput,
        "addRegion: binding target must be a child input port");
  }
  detail::check<GraphError>(kind == RegionKind::kLoop || carried.empty(),
                            "addRegion: carried values only make sense for "
                            "loops");
  for (const PortBinding& c : carried) {
    detail::check<GraphError>(
        c.from.isValid() && c.from.value() < body.nodeCount() &&
            c.to.isValid() && c.to.value() < body.nodeCount() &&
            body.node(c.to).kind == OpKind::kInput,
        "addRegion: carried pair must map a body value to a body input");
  }
  Region region;
  region.region_kind = kind;
  region.graph = std::move(body);
  region.parent = parent;
  region.bindings = std::move(bindings);
  region.carried = std::move(carried);
  regions_.push_back(std::move(region));
  return RegionId(static_cast<RegionId::value_type>(regions_.size() - 1));
}

const Cdfg& HierarchicalCdfg::body(RegionId r) const {
  checkRegion(r);
  return regions_[r.value()].graph;
}

RegionKind HierarchicalCdfg::kind(RegionId r) const {
  checkRegion(r);
  return regions_[r.value()].region_kind;
}

std::vector<RegionId> HierarchicalCdfg::children(RegionId r) const {
  checkRegion(r);
  std::vector<RegionId> result;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].parent == r) {
      result.emplace_back(static_cast<RegionId::value_type>(i));
    }
  }
  return result;
}

std::size_t HierarchicalCdfg::totalOperations() const {
  std::size_t total = 0;
  for (const Region& region : regions_) {
    for (const NodeId v : region.graph.allNodes()) {
      total += !isPseudoOp(region.graph.node(v).kind);
    }
  }
  return total;
}

void HierarchicalCdfg::checkRegion(RegionId r) const {
  detail::check<GraphError>(r.isValid() && r.value() < regions_.size(),
                            "region id out of range");
}

Cdfg HierarchicalCdfg::flatten(std::uint32_t unroll,
                               std::vector<NodeMap>* firstInstanceMap) const {
  detail::check<GraphError>(unroll >= 1, "flatten: unroll must be >= 1");
  Cdfg flat;
  std::vector<NodeMap> first(regions_.size());

  // Instantiate the root once, then each region in declaration order
  // (parents precede children by construction).
  std::vector<std::vector<NodeMap>> instances(regions_.size());

  for (std::size_t ri = 0; ri < regions_.size(); ++ri) {
    const Region& region = regions_[ri];
    const std::uint32_t copies =
        region.region_kind == RegionKind::kLoop ? unroll : 1;
    for (std::uint32_t c = 0; c < copies; ++c) {
      NodeMap map;
      for (const NodeId v : region.graph.allNodes()) {
        const Node& n = region.graph.node(v);
        std::string name = n.name;
        if (!name.empty() && (copies > 1 || ri > 0)) {
          name += "@r" + std::to_string(ri);
          if (copies > 1) {
            name += "i" + std::to_string(c);
          }
        }
        map.emplace(v, flat.addNode(n.kind, std::move(name)));
      }
      for (const EdgeId e : region.graph.allEdges()) {
        const Edge& ed = region.graph.edge(e);
        flat.addEdge(map.at(ed.src), map.at(ed.dst), ed.kind);
      }
      instances[ri].push_back(std::move(map));
    }
    first[ri] = instances[ri].front();

    if (ri == 0) {
      continue;
    }
    // Wire the region to its parent's FIRST instance: parent values feed
    // the child's input ports (pseudo-op boundary preserved).
    const NodeMap& parent_map = instances[region.parent.value()].front();
    for (const PortBinding& b : region.bindings) {
      flat.addEdge(parent_map.at(b.from), instances[ri].front().at(b.to),
                   EdgeKind::kData);
    }
    // Chain loop iterations: copy c's carried outputs feed copy c+1's
    // input ports; non-carried bindings repeat from the parent.
    for (std::uint32_t c = 1; c < instances[ri].size(); ++c) {
      for (const PortBinding& b : region.bindings) {
        bool carried_port = false;
        for (const PortBinding& cv : region.carried) {
          carried_port |= cv.to == b.to;
        }
        if (!carried_port) {
          flat.addEdge(parent_map.at(b.from), instances[ri][c].at(b.to),
                       EdgeKind::kData);
        }
      }
      for (const PortBinding& cv : region.carried) {
        flat.addEdge(instances[ri][c - 1].at(cv.from),
                     instances[ri][c].at(cv.to), EdgeKind::kData);
      }
    }
  }
  flat.checkAcyclic();
  if (firstInstanceMap != nullptr) {
    *firstInstanceMap = std::move(first);
  }
  return flat;
}

}  // namespace locwm::cdfg
