#include "cdfg/random_dfg.h"

#include <array>
#include <vector>

#include "cdfg/prng.h"

namespace locwm::cdfg {

namespace {

OpKind drawOp(const RandomDfgOptions& o, SplitMix64& rng) {
  struct Entry {
    double weight;
    OpKind kind;
  };
  const std::array<Entry, 11> entries = {{
      {o.w_add, OpKind::kAdd},
      {o.w_sub, OpKind::kSub},
      {o.w_mul, OpKind::kMul},
      {o.w_shift, OpKind::kShift},
      {o.w_logic / 3.0, OpKind::kAnd},
      {o.w_logic / 3.0, OpKind::kOr},
      {o.w_logic / 3.0, OpKind::kXor},
      {o.w_cmp, OpKind::kCmp},
      {o.w_load, OpKind::kLoad},
      {o.w_store, OpKind::kStore},
      {o.w_branch, OpKind::kBranch},
  }};
  double total = 0;
  for (const Entry& e : entries) {
    total += e.weight;
  }
  detail::check<GraphError>(total > 0, "randomDfg(): all op weights zero");
  double pick = rng.unit() * total;
  for (const Entry& e : entries) {
    pick -= e.weight;
    if (pick <= 0) {
      return e.kind;
    }
  }
  return OpKind::kAdd;
}

/// Number of data operands an operation consumes.
std::size_t arity(OpKind kind) {
  switch (kind) {
    case OpKind::kNot:
    case OpKind::kNeg:
    case OpKind::kCopy:
    case OpKind::kLoad:
    case OpKind::kShift:
    case OpKind::kConstMul:
      return 1;
    case OpKind::kBranch:
      return 1;
    case OpKind::kMux:
      return 3;
    default:
      return 2;
  }
}

}  // namespace

Cdfg randomDfg(const RandomDfgOptions& options, std::uint64_t seed) {
  detail::check<GraphError>(options.operations > 0 && options.inputs > 0 &&
                                options.width > 0,
                            "randomDfg(): sizes must be positive");
  SplitMix64 rng(seed);
  Cdfg g;

  // Layer 0: primary inputs.
  std::vector<std::vector<NodeId>> layers(1);
  for (std::size_t i = 0; i < options.inputs; ++i) {
    layers[0].push_back(g.addNode(OpKind::kInput, "in" + std::to_string(i)));
  }

  std::size_t made = 0;
  while (made < options.operations) {
    const std::size_t remaining = options.operations - made;
    const std::size_t layer_size =
        std::min(remaining, 1 + rng.below(2 * options.width));
    std::vector<NodeId> layer;
    layer.reserve(layer_size);
    for (std::size_t i = 0; i < layer_size; ++i) {
      const OpKind kind = drawOp(options, rng);
      const NodeId v = g.addNode(kind, "op" + std::to_string(made + i));
      // Wire operands: mostly from the previous layer, sometimes long-range.
      const std::size_t nin = arity(kind);
      for (std::size_t a = 0; a < nin; ++a) {
        std::size_t src_layer = layers.size() - 1;
        if (layers.size() > 1 && rng.chance(options.long_edge_prob)) {
          src_layer = rng.below(layers.size());
        }
        const auto& pool = layers[src_layer];
        const NodeId src = pool[rng.below(pool.size())];
        g.addEdge(src, v, EdgeKind::kData);
      }
      layer.push_back(v);
    }
    made += layer_size;
    layers.push_back(std::move(layer));
  }

  // Export a fraction of the last layer (and any fanout-free values) as
  // primary outputs so the graph has proper sinks.
  std::size_t out_index = 0;
  for (const NodeId v : layers.back()) {
    if (rng.chance(options.output_fraction)) {
      const NodeId o =
          g.addNode(OpKind::kOutput, "out" + std::to_string(out_index++));
      g.addEdge(v, o, EdgeKind::kData);
    }
  }
  if (out_index == 0 && !layers.back().empty()) {
    const NodeId o = g.addNode(OpKind::kOutput, "out0");
    g.addEdge(layers.back().front(), o, EdgeKind::kData);
  }
  return g;
}

}  // namespace locwm::cdfg
