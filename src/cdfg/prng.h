// Small deterministic PRNG for workload generation.
//
// Workload generators must be bit-reproducible across platforms and
// standard-library versions (std::mt19937's distributions are not), so we
// carry our own SplitMix64 generator.  This PRNG is for *benchmark
// synthesis only* — all watermarking randomness comes from the RC4 keyed
// bitstream in crypto/, never from here.
#pragma once

#include <cstdint>

namespace locwm::cdfg {

/// SplitMix64 — tiny, fast, and statistically solid for the sizes we need.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 raw bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Rejection sampling over the top bits to avoid modulo bias.
    const std::uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform double in [0, 1).
  double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool chance(double p) noexcept { return unit() < p; }

 private:
  std::uint64_t state_;
};

/// Counter-splitting: derives the seed of substream `index` from a base
/// seed.  One SplitMix64 step over `seed ^ f(index)` with a second
/// finalizer round scrambles the (seed, index) pair well enough that
/// substreams started from adjacent indices share no prefix — each
/// parallel task seeds its own SplitMix64 with substreamSeed(base, task)
/// and draws are independent of how tasks are scheduled across threads.
constexpr std::uint64_t substreamSeed(std::uint64_t seed,
                                      std::uint64_t index) noexcept {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCDULL;
  return z ^ (z >> 33);
}

}  // namespace locwm::cdfg
