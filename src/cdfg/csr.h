// Compressed-sparse-row, structure-of-arrays snapshot of a Cdfg.
//
// The mutable Cdfg builder stores adjacency as a vector of per-node
// vectors of edge ids; every neighbour visit chases two pointers (the
// outer vector, then the edge table) and the convenience accessors
// (predecessors(), successors(), data*()) allocate a fresh std::vector
// per call.  That layout is right for *construction* — edges arrive one
// at a time — and wrong for *analysis*, where the same read-mostly
// structure is traversed millions of times.
//
// CsrView lowers a finished graph once into a single arena-backed
// allocation laid out for cache-friendly traversal:
//
//   * per-direction neighbour arrays, contiguous over all nodes, with
//     each node's neighbours grouped by edge kind in the fixed order
//     data, control, temporal.  Any of the masks the analyses use —
//     one kind, data+control, all — is therefore one contiguous span;
//   * parallel edge-id arrays aligned index-for-index with the
//     neighbour arrays, so traversals that must name or skip a specific
//     edge (LW601, hasPathSkipping) stay allocation-free;
//   * a structure-of-arrays node-kind table (one byte per node), so
//     kind tests touch 1 byte/node instead of a 40-byte Node with an
//     embedded std::string;
//   * offset tables with three kind boundaries per node (3n+1 entries
//     per direction), giving degrees and segment spans in O(1).
//
// Lowering is O(N + E) by counting sort over the edge table and is
// deterministic: within one (node, kind) segment, neighbours appear in
// edge-insertion order — the same relative order Cdfg::predecessors /
// successors produce — and parallel (duplicate) edges are preserved.
//
// Lowering contract: a view is a *snapshot*.  Mutating the builder
// (addNode/addEdge) after lowering is not reflected in any existing
// view and leaves it dangling only if the graph itself is destroyed;
// re-lower after mutation.  Analyses that must observe mutations as
// they happen (e.g. watermark embedding, which adds temporal edges
// between eligibility probes) stay on the builder API.  See
// docs/GRAPH_CORE.md.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>

#include "cdfg/graph.h"
#include "cdfg/ids.h"
#include "cdfg/operation.h"

namespace locwm::cdfg {

/// Which edge kinds a CSR lookup spans.  The per-node segments are stored
/// in the order data, control, temporal, so every selector is one
/// contiguous range (kDataControl exists because data+temporal would not
/// be — no analysis in this codebase wants it).
enum class EdgeSel : std::uint8_t {
  kData = 0,
  kControl = 1,
  kTemporal = 2,
  kDataControl = 3,  ///< data + control (the "includeTemporal=false" view)
  kAll = 4,          ///< data + control + temporal
};

/// Read-only CSR/SoA view of one Cdfg.  Copy of the structure, not of the
/// node labels; cheap to move, one heap allocation total.
class CsrView {
 public:
  CsrView() = default;
  explicit CsrView(const Cdfg& g);

  // The section pointers alias arena_'s heap buffer; moving a vector
  // transfers that buffer, so moves keep them valid — copies would not.
  CsrView(const CsrView&) = delete;
  CsrView& operator=(const CsrView&) = delete;
  CsrView(CsrView&&) noexcept = default;
  CsrView& operator=(CsrView&&) noexcept = default;

  [[nodiscard]] std::size_t nodeCount() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t edgeCount() const noexcept { return edges_; }

  /// Operation kind of `v` (SoA copy; no bounds check beyond the span's).
  [[nodiscard]] OpKind kind(NodeId v) const noexcept {
    return static_cast<OpKind>(kinds_[v.value()]);
  }

  /// Neighbours reached by edges leaving `v` whose kind matches `sel`,
  /// in edge-insertion order within each kind segment.  Duplicates
  /// (parallel edges) are preserved.  The span aliases the view's arena:
  /// valid as long as the view lives, no allocation.
  [[nodiscard]] std::span<const NodeId> successors(NodeId v,
                                                   EdgeSel sel) const noexcept {
    const auto [lo, hi] = segment(out_off_, v, sel);
    return {out_node_ + lo, hi - lo};
  }
  [[nodiscard]] std::span<const NodeId> predecessors(
      NodeId v, EdgeSel sel) const noexcept {
    const auto [lo, hi] = segment(in_off_, v, sel);
    return {in_node_ + lo, hi - lo};
  }

  /// Edge ids aligned index-for-index with successors(v, sel) /
  /// predecessors(v, sel): outEdges(v, sel)[i] is the edge whose dst is
  /// successors(v, sel)[i].
  [[nodiscard]] std::span<const EdgeId> outEdges(NodeId v,
                                                 EdgeSel sel) const noexcept {
    const auto [lo, hi] = segment(out_off_, v, sel);
    return {out_edge_ + lo, hi - lo};
  }
  [[nodiscard]] std::span<const EdgeId> inEdges(NodeId v,
                                                EdgeSel sel) const noexcept {
    const auto [lo, hi] = segment(in_off_, v, sel);
    return {in_edge_ + lo, hi - lo};
  }

  [[nodiscard]] std::size_t outDegree(NodeId v, EdgeSel sel) const noexcept {
    const auto [lo, hi] = segment(out_off_, v, sel);
    return hi - lo;
  }
  [[nodiscard]] std::size_t inDegree(NodeId v, EdgeSel sel) const noexcept {
    const auto [lo, hi] = segment(in_off_, v, sel);
    return hi - lo;
  }

  /// Bytes held by the arena (the view's only allocation).
  [[nodiscard]] std::size_t memoryBytes() const noexcept {
    return arena_.size() * sizeof(std::uint32_t);
  }
  /// memoryBytes() / nodeCount(), 0 for an empty graph.
  [[nodiscard]] double bytesPerNode() const noexcept {
    return nodes_ == 0 ? 0.0
                       : static_cast<double>(memoryBytes()) /
                             static_cast<double>(nodes_);
  }

 private:
  /// [start, end) arena indices of the `sel` segment of node `v` in the
  /// offset table `off` (out_off_ or in_off_).
  [[nodiscard]] static std::pair<std::uint32_t, std::uint32_t> segment(
      const std::uint32_t* off, NodeId v, EdgeSel sel) noexcept {
    const std::size_t base = std::size_t{3} * v.value();
    switch (sel) {
      case EdgeSel::kData:
        return {off[base + 0], off[base + 1]};
      case EdgeSel::kControl:
        return {off[base + 1], off[base + 2]};
      case EdgeSel::kTemporal:
        return {off[base + 2], off[base + 3]};
      case EdgeSel::kDataControl:
        return {off[base + 0], off[base + 2]};
      case EdgeSel::kAll:
        return {off[base + 0], off[base + 3]};
    }
    return {0, 0};
  }

  std::size_t nodes_ = 0;
  std::size_t edges_ = 0;
  /// The single allocation.  Sections, in order: out offsets (3n+1 words),
  /// in offsets (3n+1), out neighbours (E), out edge ids (E), in
  /// neighbours (E), in edge ids (E), node kinds ((n+3)/4 words of bytes).
  std::vector<std::uint32_t> arena_;
  // Section pointers into arena_ (set once at construction).  NodeId and
  // EdgeId are single-uint32 wrappers, so the neighbour/edge sections are
  // viewed through them directly.
  static_assert(sizeof(NodeId) == sizeof(std::uint32_t) &&
                    std::is_trivially_copyable_v<NodeId> &&
                    sizeof(EdgeId) == sizeof(std::uint32_t) &&
                    std::is_trivially_copyable_v<EdgeId>,
                "CSR sections are reinterpreted as id arrays");
  const std::uint32_t* out_off_ = nullptr;
  const std::uint32_t* in_off_ = nullptr;
  const NodeId* out_node_ = nullptr;
  const EdgeId* out_edge_ = nullptr;
  const NodeId* in_node_ = nullptr;
  const EdgeId* in_edge_ = nullptr;
  const std::uint8_t* kinds_ = nullptr;
};

/// The EdgeSel whose span equals filtering by `kind` alone.
[[nodiscard]] constexpr EdgeSel edgeSelOf(EdgeKind kind) noexcept {
  return static_cast<EdgeSel>(static_cast<std::uint8_t>(kind));
}

/// The edge kind of every member of a single-kind or merged selector
/// segment is recoverable per sub-segment; this helper names the three
/// primitive kinds in storage order for mask-driven traversals.
inline constexpr EdgeKind kCsrKindOrder[3] = {
    EdgeKind::kData, EdgeKind::kControl, EdgeKind::kTemporal};

}  // namespace locwm::cdfg
