#include "cdfg/graph.h"

#include <algorithm>
#include <queue>

namespace locwm::cdfg {

std::string_view edgeKindName(EdgeKind kind) noexcept {
  switch (kind) {
    case EdgeKind::kData:
      return "data";
    case EdgeKind::kControl:
      return "control";
    case EdgeKind::kTemporal:
      return "temporal";
  }
  return "?";
}

NodeId Cdfg::addNode(OpKind kind, std::string name) {
  const auto id = NodeId(static_cast<NodeId::value_type>(nodes_.size()));
  nodes_.push_back(Node{kind, std::move(name)});
  if (!node_alive_.empty()) {
    node_alive_.push_back(1);
  }
  in_.emplace_back();
  out_.emplace_back();
  return id;
}

EdgeId Cdfg::addEdge(NodeId src, NodeId dst, EdgeKind kind) {
  checkNode(src);
  checkNode(dst);
  detail::check<GraphError>(nodeAlive(src) && nodeAlive(dst),
                            "edge endpoint is a removed node");
  detail::check<GraphError>(src != dst, "self-edge is not allowed");
  if (kind == EdgeKind::kTemporal) {
    detail::check<GraphError>(!hasEdge(src, dst, EdgeKind::kTemporal),
                              "duplicate temporal edge");
  }
  const auto id = EdgeId(static_cast<EdgeId::value_type>(edges_.size()));
  edges_.push_back(Edge{src, dst, kind});
  if (!edge_alive_.empty()) {
    edge_alive_.push_back(1);
  }
  out_[src.value()].push_back(id);
  in_[dst.value()].push_back(id);
  return id;
}

void Cdfg::removeEdge(EdgeId id) {
  checkEdge(id);
  detail::check<GraphError>(edgeAlive(id), "edge already removed");
  const Edge& e = edges_[id.value()];
  auto& outs = out_[e.src.value()];
  outs.erase(std::find(outs.begin(), outs.end(), id));
  auto& ins = in_[e.dst.value()];
  ins.erase(std::find(ins.begin(), ins.end(), id));
  if (edge_alive_.empty()) {
    edge_alive_.assign(edges_.size(), 1);
  }
  edge_alive_[id.value()] = 0;
  ++dead_edges_;
}

void Cdfg::removeNode(NodeId id) {
  checkNode(id);
  detail::check<GraphError>(nodeAlive(id), "node already removed");
  // Copy the incident lists: removeEdge mutates them as we go.
  const std::vector<EdgeId> outs = out_[id.value()];
  for (const EdgeId e : outs) {
    removeEdge(e);
  }
  const std::vector<EdgeId> ins = in_[id.value()];
  for (const EdgeId e : ins) {
    removeEdge(e);
  }
  if (node_alive_.empty()) {
    node_alive_.assign(nodes_.size(), 1);
  }
  node_alive_[id.value()] = 0;
  ++dead_nodes_;
}

EdgeId Cdfg::findEdge(NodeId src, NodeId dst, EdgeKind kind) const {
  checkNode(src);
  checkNode(dst);
  for (const EdgeId e : out_[src.value()]) {
    const Edge& ed = edges_[e.value()];
    if (ed.dst == dst && ed.kind == kind) {
      return e;
    }
  }
  return EdgeId::invalid();
}

bool Cdfg::nodeAlive(NodeId id) const {
  checkNode(id);
  return node_alive_.empty() || node_alive_[id.value()] != 0;
}

bool Cdfg::edgeAlive(EdgeId id) const {
  checkEdge(id);
  return edge_alive_.empty() || edge_alive_[id.value()] != 0;
}

const Node& Cdfg::node(NodeId id) const {
  checkNode(id);
  return nodes_[id.value()];
}

const Edge& Cdfg::edge(EdgeId id) const {
  detail::check<GraphError>(id.isValid() && id.value() < edges_.size(),
                            "edge id out of range");
  return edges_[id.value()];
}

void Cdfg::setNodeName(NodeId id, std::string name) {
  checkNode(id);
  nodes_[id.value()].name = std::move(name);
}

const std::vector<EdgeId>& Cdfg::inEdges(NodeId id) const {
  checkNode(id);
  return in_[id.value()];
}

const std::vector<EdgeId>& Cdfg::outEdges(NodeId id) const {
  checkNode(id);
  return out_[id.value()];
}

std::vector<NodeId> Cdfg::predecessors(NodeId id, bool includeTemporal) const {
  std::vector<NodeId> result;
  for (const EdgeId e : inEdges(id)) {
    const Edge& ed = edges_[e.value()];
    if (ed.kind == EdgeKind::kTemporal && !includeTemporal) {
      continue;
    }
    result.push_back(ed.src);
  }
  return result;
}

std::vector<NodeId> Cdfg::successors(NodeId id, bool includeTemporal) const {
  std::vector<NodeId> result;
  for (const EdgeId e : outEdges(id)) {
    const Edge& ed = edges_[e.value()];
    if (ed.kind == EdgeKind::kTemporal && !includeTemporal) {
      continue;
    }
    result.push_back(ed.dst);
  }
  return result;
}

std::vector<NodeId> Cdfg::dataPredecessors(NodeId id) const {
  std::vector<NodeId> result;
  for (const EdgeId e : inEdges(id)) {
    const Edge& ed = edges_[e.value()];
    if (ed.kind == EdgeKind::kData) {
      result.push_back(ed.src);
    }
  }
  return result;
}

std::vector<NodeId> Cdfg::dataSuccessors(NodeId id) const {
  std::vector<NodeId> result;
  for (const EdgeId e : outEdges(id)) {
    const Edge& ed = edges_[e.value()];
    if (ed.kind == EdgeKind::kData) {
      result.push_back(ed.dst);
    }
  }
  return result;
}

std::vector<NodeId> Cdfg::allNodes() const {
  std::vector<NodeId> result;
  result.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    result.emplace_back(static_cast<NodeId::value_type>(i));
  }
  return result;
}

std::vector<EdgeId> Cdfg::allEdges() const {
  std::vector<EdgeId> result;
  result.reserve(edgeCount());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (!edge_alive_.empty() && edge_alive_[i] == 0) {
      continue;
    }
    result.emplace_back(static_cast<EdgeId::value_type>(i));
  }
  return result;
}

std::vector<EdgeId> Cdfg::temporalEdges() const {
  std::vector<EdgeId> result;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (!edge_alive_.empty() && edge_alive_[i] == 0) {
      continue;
    }
    if (edges_[i].kind == EdgeKind::kTemporal) {
      result.emplace_back(static_cast<EdgeId::value_type>(i));
    }
  }
  return result;
}

bool Cdfg::hasEdge(NodeId src, NodeId dst, EdgeKind kind) const {
  checkNode(src);
  checkNode(dst);
  const auto& outs = out_[src.value()];
  return std::any_of(outs.begin(), outs.end(), [&](EdgeId e) {
    const Edge& ed = edges_[e.value()];
    return ed.dst == dst && ed.kind == kind;
  });
}

NodeId Cdfg::findByName(std::string_view name) const {
  NodeId found = NodeId::invalid();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) {
      if (found.isValid()) {
        return NodeId::invalid();  // ambiguous
      }
      found = NodeId(static_cast<NodeId::value_type>(i));
    }
  }
  return found;
}

Cdfg Cdfg::stripTemporalEdges() const {
  Cdfg out;
  for (const Node& n : nodes_) {
    out.addNode(n.kind, n.name);
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (!edge_alive_.empty() && edge_alive_[i] == 0) {
      continue;
    }
    const Edge& e = edges_[i];
    if (e.kind != EdgeKind::kTemporal) {
      out.addEdge(e.src, e.dst, e.kind);
    }
  }
  // Tombstones carry over so node ids keep lining up with the source graph.
  if (!node_alive_.empty()) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (node_alive_[i] == 0) {
        out.removeNode(NodeId(static_cast<NodeId::value_type>(i)));
      }
    }
  }
  return out;
}

void Cdfg::checkAcyclic() const {
  (void)topologicalOrder(/*includeTemporal=*/true);
}

std::vector<NodeId> Cdfg::topologicalOrder(bool includeTemporal) const {
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (!edge_alive_.empty() && edge_alive_[i] == 0) {
      continue;
    }
    const Edge& e = edges_[i];
    if (e.kind == EdgeKind::kTemporal && !includeTemporal) {
      continue;
    }
    ++indegree[e.dst.value()];
  }
  // Deterministic Kahn's algorithm: lowest node id first.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>>
      ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) {
      ready.push(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const std::uint32_t v = ready.top();
    ready.pop();
    order.emplace_back(v);
    for (const EdgeId e : out_[v]) {
      const Edge& ed = edges_[e.value()];
      if (ed.kind == EdgeKind::kTemporal && !includeTemporal) {
        continue;
      }
      if (--indegree[ed.dst.value()] == 0) {
        ready.push(ed.dst.value());
      }
    }
  }
  detail::check<GraphError>(order.size() == nodes_.size(),
                            "CDFG contains a dependence cycle");
  return order;
}

void Cdfg::checkNode(NodeId id) const {
  detail::check<GraphError>(id.isValid() && id.value() < nodes_.size(),
                            "node id out of range");
}

void Cdfg::checkEdge(EdgeId id) const {
  detail::check<GraphError>(id.isValid() && id.value() < edges_.size(),
                            "edge id out of range");
}

}  // namespace locwm::cdfg
