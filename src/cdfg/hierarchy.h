// Hierarchical CDFG — the paper's §II syntax: "the targeted computation is
// defined as a hierarchical control-data flow graph (CDFG)" (HYPER [9]).
//
// A hierarchical design is a tree of *regions*: the root straight-line
// body plus nested loop and conditional bodies, each an ordinary Cdfg.
// Region boundaries pass values through the child region's kInput nodes
// and consume its outputs — the same pseudo-op port convention the
// watermark locality derivation treats as an uncrossable boundary, so a
// watermark embedded in a region body is derived from that body alone and
// survives however the region is composed, unrolled, or inlined.
//
// flatten() lowers the hierarchy into one schedulable Cdfg: each loop body
// is instantiated `unroll` times (iterations chained through the loop's
// carried values); conditional bodies are inlined once, speculatively —
// the HLS convention of scheduling both-sides-then-select, with the
// select itself belonging to the parent body.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdfg/graph.h"
#include "cdfg/ids.h"
#include "cdfg/subgraph.h"

namespace locwm::cdfg {

/// Kind of a region.
enum class RegionKind : std::uint8_t {
  kBody = 0,  ///< straight-line body (the root, or a sub-block)
  kLoop = 1,  ///< iterated body with loop-carried values
  kCond = 2,  ///< conditionally-executed body (inlined speculatively)
};

/// Identifies a region within one HierarchicalCdfg.
using RegionId = detail::StrongId<struct RegionIdTag>;

/// One port connection between a parent region and a child region: the
/// parent's value `from` feeds the child's primary input `to` (an
/// OpKind::kInput node of the child's graph).
struct PortBinding {
  NodeId from;  ///< node in the parent region's graph
  NodeId to;    ///< kInput node in the child region's graph
};

/// A hierarchical design.
class HierarchicalCdfg {
 public:
  /// Creates the root region from `body`.
  explicit HierarchicalCdfg(Cdfg body);

  /// Adds a child region under `parent`.  `bindings` wire parent values to
  /// the child's input ports.  For kLoop, `carried` pairs each loop-output
  /// (node in the child graph) with the loop-input port it feeds on the
  /// next iteration.
  RegionId addRegion(RegionId parent, RegionKind kind, Cdfg body,
                     std::vector<PortBinding> bindings,
                     std::vector<PortBinding> carried = {});

  [[nodiscard]] std::size_t regionCount() const noexcept {
    return regions_.size();
  }
  [[nodiscard]] static RegionId root() { return RegionId(0); }
  [[nodiscard]] const Cdfg& body(RegionId r) const;
  [[nodiscard]] RegionKind kind(RegionId r) const;
  [[nodiscard]] std::vector<RegionId> children(RegionId r) const;

  /// Total operations across all regions (each loop body counted once).
  [[nodiscard]] std::size_t totalOperations() const;

  /// Lowers the hierarchy into one flat Cdfg.  Loop bodies are cloned
  /// `unroll` times with carried values chained between the copies;
  /// conditional arms are both instantiated.  Returns the flat graph and,
  /// via `firstInstanceMap` (optional), the mapping from each region's
  /// node ids to their first-instance ids in the flat graph.
  [[nodiscard]] Cdfg flatten(
      std::uint32_t unroll = 1,
      std::vector<NodeMap>* firstInstanceMap = nullptr) const;

 private:
  struct Region {
    RegionKind region_kind = RegionKind::kBody;
    Cdfg graph;
    RegionId parent = RegionId::invalid();
    std::vector<PortBinding> bindings;
    std::vector<PortBinding> carried;
  };
  void checkRegion(RegionId r) const;

  std::vector<Region> regions_;
};

}  // namespace locwm::cdfg
