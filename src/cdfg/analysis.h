// Structural analyses over a CDFG: levels, heights, critical path, laxity,
// transitive-fanin neighbourhoods, and fanin-tree extraction.
//
// Everything in this header is *unit-weight* (path lengths counted in
// operations), matching the paper's use: ordering criterion C1 levels,
// laxity expressed in "operations", and critical-path length C.  The
// latency-aware ASAP/ALAP machinery lives in sched/.
//
// Pseudo-operations (inputs, outputs, constants) take no control step; they
// contribute zero length to paths through them.
#pragma once

#include <cstdint>
#include <vector>

#include "cdfg/csr.h"
#include "cdfg/graph.h"
#include "cdfg/ids.h"

namespace locwm::cdfg {

/// Per-node structural metrics of one graph, computed once.
class StructuralAnalysis {
 public:
  /// Computes all metrics.  Temporal edges are excluded: structural
  /// identification must see the *original* specification, otherwise the
  /// watermark constraints would perturb the identifiers used to detect
  /// them.
  explicit StructuralAnalysis(const Cdfg& graph);

  /// Level of a node: the longest path (in non-pseudo operations, inclusive
  /// of the node itself when it is not a pseudo-op) from any source to the
  /// node.  Sources with no predecessors have level 0 (pseudo) or 1 (real
  /// op).  This is ordering criterion C1.
  [[nodiscard]] std::uint32_t level(NodeId n) const;

  /// Height of a node: the longest path from the node to any sink,
  /// counted the same way as level().
  [[nodiscard]] std::uint32_t height(NodeId n) const;

  /// Length of the critical path of the whole CDFG, in operations.
  [[nodiscard]] std::uint32_t criticalPathLength() const noexcept {
    return critical_path_;
  }

  /// Laxity of a node per §IV-A: the length of the longest source→sink path
  /// passing through the node.  Nodes on the critical path have laxity ==
  /// criticalPathLength().
  [[nodiscard]] std::uint32_t laxity(NodeId n) const;

  /// Slack of a node: criticalPathLength() - laxity(n).
  [[nodiscard]] std::uint32_t slack(NodeId n) const;

  /// Number of nodes in the transitive fanin of `n` restricted to distance
  /// <= dist (n itself excluded).  This is ordering criterion C2's |TF|.
  [[nodiscard]] std::size_t transitiveFaninCount(NodeId n,
                                                 std::uint32_t dist) const;

  /// The nodes of the fanin tree of `n` with max-distance `dist`:
  /// every node reachable from `n` by walking data/control edges backwards
  /// at most `dist` steps, including `n` itself.  Deterministic order:
  /// breadth-first, ties by ascending node id.
  [[nodiscard]] std::vector<NodeId> faninTree(NodeId n,
                                              std::uint32_t dist) const;

  /// Sorted multiset of functionality ids (see functionalityId()) of the
  /// fanin tree of `n` at max-distance `dist`, *excluding* n itself.  This
  /// is ordering criterion C3's F(Dx) realized as a comparable value.
  [[nodiscard]] std::vector<std::uint8_t> functionalitySignature(
      NodeId n, std::uint32_t dist) const;

  /// The graph the analysis was built over.
  [[nodiscard]] const Cdfg& graph() const noexcept { return *graph_; }

  /// CSR snapshot of the graph, lowered once at construction.  The
  /// ordering refinement (ordering.cpp) and every other read-mostly
  /// consumer of the analysis traverses this instead of the builder's
  /// allocating accessors.  Snapshot semantics: taken before any
  /// mutation the caller performs after constructing the analysis —
  /// which would stale the level/height tables anyway.
  [[nodiscard]] const CsrView& csr() const noexcept { return csr_; }

 private:
  const Cdfg* graph_;
  CsrView csr_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> height_;
  std::uint32_t critical_path_ = 0;
};

}  // namespace locwm::cdfg
