// Graphviz DOT export for CDFGs.
//
// Purely diagnostic: lets a user eyeball a workload, a selected watermark
// locality, or the temporal edges a watermark added (rendered dashed red).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "cdfg/graph.h"

namespace locwm::cdfg {

/// Options controlling DOT rendering.
struct DotOptions {
  /// Nodes to highlight (e.g. the watermark locality), drawn filled.
  std::vector<NodeId> highlight;
  /// Graph name used in the `digraph` header.
  std::string name = "cdfg";
};

/// Writes `g` to `os` in Graphviz DOT syntax.  Temporal edges are rendered
/// dashed red; control edges dotted; data edges solid.
void writeDot(std::ostream& os, const Cdfg& g, const DotOptions& options = {});

/// Convenience: renders to a string.
[[nodiscard]] std::string toDot(const Cdfg& g, const DotOptions& options = {});

}  // namespace locwm::cdfg
