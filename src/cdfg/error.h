// Error hierarchy for the locwm library.
//
// Invariant violations and misuse of APIs throw exceptions derived from
// locwm::Error.  Recoverable outcomes ("no locality of the requested size
// exists") are reported through std::optional / status structs instead, so
// exceptions always indicate a caller bug or corrupted input.
#pragma once

#include <stdexcept>
#include <string>

namespace locwm {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a graph invariant is violated (dangling id, cycle in the
/// data-dependence relation, duplicate edge where forbidden, ...).
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& what) : Error(what) {}
};

/// Thrown when parsing a textual CDFG description fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a scheduling request is infeasible in a way that indicates
/// caller error (e.g. a latency bound below the critical path).
class ScheduleError : public Error {
 public:
  explicit ScheduleError(const std::string& what) : Error(what) {}
};

/// Thrown on watermarking-protocol misuse (bad parameters, empty key, ...).
class WatermarkError : public Error {
 public:
  explicit WatermarkError(const std::string& what) : Error(what) {}
};

namespace detail {

/// Throws E(message) when `condition` is false.  Used instead of assert so
/// that release builds keep the checks that guard API contracts.
template <typename E = Error>
inline void check(bool condition, const std::string& message) {
  if (!condition) {
    throw E(message);
  }
}

}  // namespace detail
}  // namespace locwm
