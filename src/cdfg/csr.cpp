#include "cdfg/csr.h"

#include "obs/obs.h"

namespace locwm::cdfg {

CsrView::CsrView(const Cdfg& g) {
  nodes_ = g.nodeCount();
  edges_ = g.edgeCount();
  const std::size_t n = nodes_;
  const std::size_t e = edges_;

  const std::size_t off_words = 3 * n + 1;       // per direction
  const std::size_t kind_words = (n + 3) / 4;    // one byte per node, packed
  arena_.assign(2 * off_words + 4 * e + kind_words, 0);

  std::uint32_t* out_off = arena_.data();
  std::uint32_t* in_off = out_off + off_words;
  std::uint32_t* out_node = in_off + off_words;
  std::uint32_t* out_edge = out_node + e;
  std::uint32_t* in_node = out_edge + e;
  std::uint32_t* in_edge = in_node + e;
  auto* kinds = reinterpret_cast<std::uint8_t*>(in_edge + e);

  const std::vector<Node>& node_tab = g.nodes();
  for (std::size_t v = 0; v < n; ++v) {
    kinds[v] = static_cast<std::uint8_t>(node_tab[v].kind);
  }

  // Counting sort by (node, kind) over the LIVE edges — the edge table may
  // carry tombstones (graph.h removal semantics).  Pass 1: segment sizes,
  // stored one slot ahead so the exclusive prefix sum can run in place.
  const std::vector<Edge>& edge_tab = g.edges();
  const std::size_t table = g.edgeTableSize();
  for (std::size_t id = 0; id < table; ++id) {
    if (!g.edgeAlive(EdgeId(static_cast<std::uint32_t>(id)))) {
      continue;
    }
    const Edge& ed = edge_tab[id];
    const auto k = static_cast<std::size_t>(ed.kind);
    ++out_off[std::size_t{3} * ed.src.value() + k + 1];
    ++in_off[std::size_t{3} * ed.dst.value() + k + 1];
  }
  for (std::size_t i = 1; i < off_words; ++i) {
    out_off[i] += out_off[i - 1];
    in_off[i] += in_off[i - 1];
  }

  // Pass 2: fill in edge-id order, so within each (node, kind) segment
  // neighbours keep edge-insertion order — matching the relative order the
  // builder accessors produce.  Cursors start at the segment offsets.
  std::vector<std::uint32_t> out_cur(out_off, out_off + off_words - 1);
  std::vector<std::uint32_t> in_cur(in_off, in_off + off_words - 1);
  for (std::size_t id = 0; id < table; ++id) {
    if (!g.edgeAlive(EdgeId(static_cast<std::uint32_t>(id)))) {
      continue;
    }
    const Edge& ed = edge_tab[id];
    const auto k = static_cast<std::size_t>(ed.kind);
    const std::uint32_t o = out_cur[std::size_t{3} * ed.src.value() + k]++;
    out_node[o] = ed.dst.value();
    out_edge[o] = static_cast<std::uint32_t>(id);
    const std::uint32_t i = in_cur[std::size_t{3} * ed.dst.value() + k]++;
    in_node[i] = ed.src.value();
    in_edge[i] = static_cast<std::uint32_t>(id);
  }

  out_off_ = out_off;
  in_off_ = in_off;
  out_node_ = reinterpret_cast<const NodeId*>(out_node);
  out_edge_ = reinterpret_cast<const EdgeId*>(out_edge);
  in_node_ = reinterpret_cast<const NodeId*>(in_node);
  in_edge_ = reinterpret_cast<const EdgeId*>(in_edge);
  kinds_ = kinds;

  LOCWM_OBS_GAUGE_MAX("cdfg.csr.arena_bytes", memoryBytes());
}

}  // namespace locwm::cdfg
