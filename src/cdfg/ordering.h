// Canonical node ordering — the paper's "domain identification" step.
//
// During watermark embedding *and* detection, every node of the selected
// locality must receive the same identifier even though node indices differ
// between the author's specification and a reverse-engineered suspect.  The
// paper (§IV-A) orders nodes by three structural criteria, consulted in
// sequence and with iteratively deepened neighbourhood radius Dx until all
// nodes are distinguished:
//
//   C1  level L(n)                  — longest path from sources to n;
//   C2  |TF(n, Dx)|                 — transitive-fanin cardinality at
//                                     max-distance Dx;
//   C3  F(n, Dx)                    — functionality signature (sorted
//                                     multiset of operation ids) of the
//                                     fanin tree at max-distance Dx.
//
// We implement C1 (refined by the node's own functionality) as the base
// colour and generalize the C2/C3 deepening to full colour refinement
// (1-WL): each round replaces a node's colour by (own colour, sorted
// multiset of predecessor colours, sorted multiset of successor colours).
// Fanin-only criteria cannot separate symmetric taps that feed the same
// consumer — ubiquitous in the paper's DSP benchmarks — whereas colour
// refinement distinguishes everything short of a true graph automorphism.
//
// Nodes that are *automorphic* can never be separated by any structural
// criterion; computeOrdering reports whether the produced ranks are unique
// so callers can exclude tied nodes (or re-select a locality).
#pragma once

#include <cstdint>
#include <vector>

#include "cdfg/analysis.h"
#include "cdfg/graph.h"
#include "cdfg/ids.h"

namespace locwm::cdfg {

/// Result of ordering a node set.
struct NodeOrdering {
  /// The input nodes sorted ascending by the (C1, C2, C3) criteria; ties
  /// broken by the node's own operation id, then left unresolved.
  std::vector<NodeId> ordered;
  /// ranks[i] is the rank of ordered[i]; equal ranks mark unresolved ties.
  std::vector<std::uint32_t> ranks;
  /// True when every node received a distinct rank — required before a
  /// locality can be used for watermarking.
  bool unique = false;
  /// Largest neighbourhood radius Dx the criteria had to examine.
  std::uint32_t max_depth_used = 0;
};

/// Orders `nodes` (a subset of `analysis.graph()`'s nodes) canonically.
///
/// `maxDepth` bounds the iterative deepening of criteria C2/C3; the default
/// comfortably exceeds the diameter of all benchmark graphs.  The ordering
/// depends only on graph structure, never on node ids or labels, so it is
/// reproducible on a re-indexed (reverse-engineered) copy of the design.
[[nodiscard]] NodeOrdering computeOrdering(const StructuralAnalysis& analysis,
                                           const std::vector<NodeId>& nodes,
                                           std::uint32_t maxDepth = 64);

/// Convenience overload ordering every node of the graph.
[[nodiscard]] NodeOrdering computeOrdering(const StructuralAnalysis& analysis,
                                           std::uint32_t maxDepth = 64);

}  // namespace locwm::cdfg
