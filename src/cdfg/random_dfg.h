// Parameterized random DFG generator.
//
// Produces layered, DSP-flavoured data-flow graphs used by the property
// tests (invariants must hold on arbitrary graphs) and by the
// MediaBench-profile workload builder (see workloads/mediabench.h), which
// instantiates it with per-application operation mixes.
#pragma once

#include <cstdint>

#include "cdfg/graph.h"

namespace locwm::cdfg {

/// Knobs of the generator.  Defaults give a mid-size arithmetic DFG.
struct RandomDfgOptions {
  /// Number of real (non-pseudo) operations to generate.
  std::size_t operations = 50;
  /// Number of primary inputs feeding the first layer.
  std::size_t inputs = 8;
  /// Approximate operations per scheduling layer; controls parallelism vs
  /// depth.  Larger → wider/shallower graph.
  std::size_t width = 8;
  /// Probability that an operand comes from a non-adjacent earlier layer
  /// (long-range dependence) instead of the previous layer.
  double long_edge_prob = 0.25;
  /// Operation mix, as relative weights.  Order:
  /// add, sub, mul, shift, logic(and/or/xor), cmp, load, store, branch.
  double w_add = 4.0;
  double w_sub = 2.0;
  double w_mul = 2.0;
  double w_shift = 1.0;
  double w_logic = 1.0;
  double w_cmp = 0.5;
  double w_load = 0.0;
  double w_store = 0.0;
  double w_branch = 0.0;
  /// Fraction of final-layer values exported through output nodes.
  double output_fraction = 0.5;
};

/// Generates a random acyclic data-flow graph.  Deterministic in `seed`.
[[nodiscard]] Cdfg randomDfg(const RandomDfgOptions& options,
                             std::uint64_t seed);

}  // namespace locwm::cdfg
