#include "cdfg/operation.h"

#include <array>

namespace locwm::cdfg {

namespace {

constexpr std::array<std::string_view, kOpKindCount> kNames = {
    "input",  "add",   "mul",   "sub",   "cmul",  "shift", "and",
    "or",     "xor",   "not",   "neg",   "cmp",   "mux",   "load",
    "store",  "branch", "div",  "const", "copy",  "output",
};

constexpr std::array<FuClass, kOpKindCount> kFuClasses = {
    /*input*/ FuClass::kNone, /*add*/ FuClass::kAlu,
    /*mul*/ FuClass::kMul,    /*sub*/ FuClass::kAlu,
    /*cmul*/ FuClass::kMul,   /*shift*/ FuClass::kAlu,
    /*and*/ FuClass::kAlu,    /*or*/ FuClass::kAlu,
    /*xor*/ FuClass::kAlu,    /*not*/ FuClass::kAlu,
    /*neg*/ FuClass::kAlu,    /*cmp*/ FuClass::kAlu,
    /*mux*/ FuClass::kAlu,    /*load*/ FuClass::kMem,
    /*store*/ FuClass::kMem,  /*branch*/ FuClass::kBranch,
    /*div*/ FuClass::kMul,    /*const*/ FuClass::kNone,
    /*copy*/ FuClass::kAlu,   /*output*/ FuClass::kNone,
};

}  // namespace

std::string_view opName(OpKind kind) noexcept {
  return kNames[static_cast<std::size_t>(kind)];
}

std::optional<OpKind> opFromName(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) {
      return static_cast<OpKind>(i);
    }
  }
  return std::nullopt;
}

FuClass fuClass(OpKind kind) noexcept {
  return kFuClasses[static_cast<std::size_t>(kind)];
}

std::string_view fuClassName(FuClass fu) noexcept {
  switch (fu) {
    case FuClass::kNone:
      return "none";
    case FuClass::kAlu:
      return "alu";
    case FuClass::kMul:
      return "mul";
    case FuClass::kMem:
      return "mem";
    case FuClass::kBranch:
      return "branch";
  }
  return "?";
}

bool isPseudoOp(OpKind kind) noexcept {
  return fuClass(kind) == FuClass::kNone;
}

bool isCommutative(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kMul:
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kXor:
      return true;
    default:
      return false;
  }
}

}  // namespace locwm::cdfg
