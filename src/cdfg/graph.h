// Control-data flow graph (CDFG) — the computational model of the paper.
//
// A Cdfg is a directed acyclic multigraph whose nodes are operations and
// whose edges come in three kinds:
//
//   * data edges      — value flow; they imply both a dependence and a
//                       variable (the source's output feeding the sink);
//   * control edges   — sequencing imposed by the control structure of the
//                       specification (loop/branch skeleton);
//   * temporal edges  — *additional* precedence constraints.  These are the
//                       carrier of the scheduling watermark (§IV-A): a
//                       temporal edge forces its source operation to be
//                       scheduled strictly before its destination.
//
// The graph owns its nodes and edges; ids are dense indices and remain valid
// for the lifetime of the graph.  Removal (the edit-delta API of delta.h
// needs it) is by *tombstone*: removeEdge/removeNode detach the element but
// never compact the tables, so every id handed out stays addressable —
// node(id) still reports kind and label for diagnostics — while adjacency,
// allEdges(), temporalEdges() and the traversal helpers see only live
// elements.  A tombstoned node is indistinguishable from an isolated one to
// every analysis that skips degree-0 nodes; text IO (io.h) flattens
// tombstones back to isolated nodes.  nodeCount() stays the id-table bound
// (analyses size their arrays by it); edgeCount() counts live edges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdfg/error.h"
#include "cdfg/ids.h"
#include "cdfg/operation.h"

namespace locwm::cdfg {

/// Kind of a CDFG edge.  See file comment.
enum class EdgeKind : std::uint8_t {
  kData = 0,
  kControl = 1,
  kTemporal = 2,
};

/// Stable mnemonic ("data" / "control" / "temporal").
[[nodiscard]] std::string_view edgeKindName(EdgeKind kind) noexcept;

/// One operation of the computation.
struct Node {
  OpKind kind = OpKind::kAdd;
  /// Human-readable label ("A5", "C3", ...).  Not used by any algorithm —
  /// identification is structural (see ordering.h) — but kept for reports
  /// and DOT output.
  std::string name;
};

/// One dependence between two operations.
struct Edge {
  NodeId src;
  NodeId dst;
  EdgeKind kind = EdgeKind::kData;
};

/// The control-data flow graph.
class Cdfg {
 public:
  Cdfg() = default;

  /// Adds a node; returns its id.  Ids are dense: the i-th added node has
  /// id value i.
  NodeId addNode(OpKind kind, std::string name = {});

  /// Adds an edge of the given kind.  Both endpoints must exist and be
  /// distinct.  Duplicate edges of the same kind are permitted for data
  /// (an operation may consume the same value twice) but rejected for
  /// temporal edges (a watermark constraint is a set).
  EdgeId addEdge(NodeId src, NodeId dst, EdgeKind kind = EdgeKind::kData);

  /// Tombstones one edge: detaches it from both endpoints' adjacency.  The
  /// id stays valid for edge() lookups (endpoints readable for reports) but
  /// the edge no longer participates in any traversal.  Ids are not reused.
  void removeEdge(EdgeId id);

  /// Tombstones a node: removes every live incident edge, then marks the
  /// node dead.  Its id remains addressable (node() still reports kind and
  /// label) but it is excluded from live accounting; addEdge to or from a
  /// dead node throws.
  void removeNode(NodeId id);

  /// First live edge (src, dst, kind), or EdgeId::invalid() when none.
  [[nodiscard]] EdgeId findEdge(NodeId src, NodeId dst, EdgeKind kind) const;

  [[nodiscard]] bool nodeAlive(NodeId id) const;
  [[nodiscard]] bool edgeAlive(EdgeId id) const;

  /// Id-table bound: dense node ids live in [0, nodeCount()), tombstones
  /// included — analyses size per-node arrays by this.
  [[nodiscard]] std::size_t nodeCount() const noexcept { return nodes_.size(); }
  /// Live (non-tombstoned) edges.  Edge *ids* range over [0, edgeTableSize()).
  [[nodiscard]] std::size_t edgeCount() const noexcept {
    return edges_.size() - dead_edges_;
  }
  /// Live (non-tombstoned) nodes.
  [[nodiscard]] std::size_t liveNodeCount() const noexcept {
    return nodes_.size() - dead_nodes_;
  }
  /// Edge-id bound (dead slots included).
  [[nodiscard]] std::size_t edgeTableSize() const noexcept {
    return edges_.size();
  }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Edge& edge(EdgeId id) const;

  /// The dense node/edge tables, in id order, TOMBSTONES INCLUDED.  These
  /// back bulk consumers — CSR lowering (csr.h), IO — that would otherwise
  /// pay a bounds check per element; element i corresponds to NodeId(i) /
  /// EdgeId(i).  Consumers of edges() must skip !edgeAlive(i) entries when
  /// the graph may carry removals.
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

  /// Renames a node (labels only; no structural effect).
  void setNodeName(NodeId id, std::string name);

  /// All edges entering `id`, in insertion order.
  [[nodiscard]] const std::vector<EdgeId>& inEdges(NodeId id) const;
  /// All edges leaving `id`, in insertion order.
  [[nodiscard]] const std::vector<EdgeId>& outEdges(NodeId id) const;

  /// Predecessors of `id` over edges whose kind passes `includeTemporal`
  /// selection.  Data and control edges are always included; temporal edges
  /// only when requested.  Duplicates (multi-edges) are preserved.
  [[nodiscard]] std::vector<NodeId> predecessors(NodeId id,
                                                 bool includeTemporal = false) const;
  [[nodiscard]] std::vector<NodeId> successors(NodeId id,
                                               bool includeTemporal = false) const;

  /// Predecessors over *data* edges only (the operand producers).
  [[nodiscard]] std::vector<NodeId> dataPredecessors(NodeId id) const;
  /// Successors over *data* edges only (the value consumers).
  [[nodiscard]] std::vector<NodeId> dataSuccessors(NodeId id) const;

  /// Iteration over all node ids [0, nodeCount), tombstones included (the
  /// id space stays dense; callers that care filter with nodeAlive()).
  [[nodiscard]] std::vector<NodeId> allNodes() const;
  /// Ids of all *live* edges, in insertion order.
  [[nodiscard]] std::vector<EdgeId> allEdges() const;
  /// Ids of all live temporal edges, in insertion order.
  [[nodiscard]] std::vector<EdgeId> temporalEdges() const;

  /// True if an edge (src, dst) of the given kind exists.
  [[nodiscard]] bool hasEdge(NodeId src, NodeId dst, EdgeKind kind) const;

  /// Looks a node up by label.  Returns NodeId::invalid() when absent or
  /// ambiguous.  Intended for tests and workload construction.
  [[nodiscard]] NodeId findByName(std::string_view name) const;

  /// A copy of this graph with every temporal edge removed — the published
  /// design after the watermarking constraints are stripped (Fig. 1's final
  /// step removes the *constraints*; the schedule that honoured them is what
  /// carries the mark).
  [[nodiscard]] Cdfg stripTemporalEdges() const;

  /// Verifies that the graph is acyclic over data+control+temporal edges.
  /// Throws GraphError when a cycle exists.  Cheap enough to call after
  /// construction and after watermark embedding.
  void checkAcyclic() const;

  /// Topological order over data+control (+optionally temporal) edges.
  /// Throws GraphError on a cycle.
  [[nodiscard]] std::vector<NodeId> topologicalOrder(bool includeTemporal = true) const;

 private:
  void checkNode(NodeId id) const;
  void checkEdge(EdgeId id) const;

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<std::vector<EdgeId>> out_;
  /// Alive bitmaps, allocated lazily on the first removal (empty = all
  /// alive): the common no-removal graph pays nothing for the feature.
  std::vector<char> node_alive_;
  std::vector<char> edge_alive_;
  std::size_t dead_nodes_ = 0;
  std::size_t dead_edges_ = 0;
};

}  // namespace locwm::cdfg
