// Operation vocabulary of the CDFG computational model.
//
// The paper restricts attention to homogeneous synchronous data flow: every
// node consumes and produces exactly one sample per invocation.  Nodes carry
// an operation kind drawn from the vocabulary below, which covers the DSP /
// communications domain of the paper's benchmarks (HYPER-style datapath ops)
// plus the memory/branch operations needed by the VLIW Table I platform.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace locwm::cdfg {

/// Operation performed by a CDFG node.
///
/// The integral values are the "unique identifiers for the functionality
/// performed by a node" referenced by ordering criterion C3 of the paper
/// (addition = 1, multiplication = 2, ...).  They are part of the detection
/// protocol and must therefore stay stable across versions.
enum class OpKind : std::uint8_t {
  kInput = 0,    ///< primary input (source node)
  kAdd = 1,      ///< addition (paper: functionality id 1)
  kMul = 2,      ///< multiplication (paper: functionality id 2)
  kSub = 3,      ///< subtraction
  kConstMul = 4, ///< multiplication by a compile-time constant
  kShift = 5,    ///< barrel shift
  kAnd = 6,
  kOr = 7,
  kXor = 8,
  kNot = 9,
  kNeg = 10,
  kCmp = 11,     ///< comparison producing a control value
  kMux = 12,     ///< 2:1 data selector
  kLoad = 13,    ///< memory read (VLIW memory unit)
  kStore = 14,   ///< memory write (VLIW memory unit)
  kBranch = 15,  ///< control transfer (VLIW branch unit)
  kDiv = 16,
  kConst = 17,   ///< compile-time constant (source node)
  kCopy = 18,    ///< register-to-register move
  kOutput = 19,  ///< primary output (sink node)
};

/// Number of distinct OpKind values; kinds are dense in [0, kOpKindCount).
inline constexpr std::size_t kOpKindCount = 20;

/// Functional-unit class an operation executes on.  Used by the
/// resource-constrained schedulers and the VLIW machine model.
enum class FuClass : std::uint8_t {
  kNone = 0,   ///< pseudo-ops (inputs, outputs, constants) occupy no unit
  kAlu = 1,    ///< add/sub/logic/compare/shift/mux/copy
  kMul = 2,    ///< multiplier (divider shares the unit in our model)
  kMem = 3,    ///< load/store unit
  kBranch = 4, ///< branch unit
};

/// Number of distinct FuClass values.
inline constexpr std::size_t kFuClassCount = 5;

/// Stable mnemonic for an operation kind ("add", "mul", ...).
[[nodiscard]] std::string_view opName(OpKind kind) noexcept;

/// Inverse of opName.  Returns nullopt for unknown names.
[[nodiscard]] std::optional<OpKind> opFromName(std::string_view name) noexcept;

/// Functional-unit class the operation kind executes on.
[[nodiscard]] FuClass fuClass(OpKind kind) noexcept;

/// Stable mnemonic for a functional-unit class ("alu", "mul", ...).
[[nodiscard]] std::string_view fuClassName(FuClass fu) noexcept;

/// True for pseudo-operations that take no control step of their own
/// (primary inputs/outputs and constants).
[[nodiscard]] bool isPseudoOp(OpKind kind) noexcept;

/// True when the operation's inputs may be swapped without changing the
/// computed value.  Used by the template matcher.
[[nodiscard]] bool isCommutative(OpKind kind) noexcept;

/// The paper's C3 functionality identifier: a stable small integer per
/// distinct operation ("addition is identified with 1, multiplication with
/// 2, etc.").  Equals the underlying enum value.
[[nodiscard]] constexpr std::uint8_t functionalityId(OpKind kind) noexcept {
  return static_cast<std::uint8_t>(kind);
}

}  // namespace locwm::cdfg
