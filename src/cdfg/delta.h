// Edit deltas and CSR patching — the mutation half of the incremental
// static-analysis engine (check/incremental.h holds the analysis half).
//
// The service arc of the ROADMAP wants small edits against large resident
// designs to be cheap.  Three pieces make that possible:
//
//   * EditDelta — a value type describing a batch of structural edits
//     (add/remove node, add/remove edge by kind) in application order;
//   * applyDelta — applies a batch to a Cdfg (using the tombstone removal
//     semantics of graph.h) and reports exactly what changed: the touched
//     node frontier, added/removed edge sets, and per-op rejections for
//     edits the graph refuses (dangling endpoint, duplicate temporal,
//     self-edge).  Rejected ops are skipped; accepted ops still apply —
//     a delta is a stream, not a transaction;
//   * CsrDelta — a patchable CSR snapshot: the immutable CsrView arena
//     (csr.h) plus a small overlay of added half-edges and a tombstone
//     set of removed edge ids.  Traversal visits the base arena (skipping
//     removed ids) and then the overlay, so analyses see the post-edit
//     graph without paying O(N + E) re-lowering per batch.  When the
//     overlay grows past a fraction of the base — or a node is added,
//     which would invalidate the offset tables — applyDelta re-lowers
//     (rebases) instead and reports that decision in AppliedDelta.
//
// Determinism: overlay half-edges are visited in insertion order after
// the base segments, and every consumer in check/ reduces over neighbours
// with order-insensitive operations (max, min, OR), so a patched view and
// a freshly lowered view produce identical analysis results.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cdfg/csr.h"
#include "cdfg/graph.h"
#include "cdfg/ids.h"
#include "cdfg/operation.h"

namespace locwm::cdfg {

/// One structural edit.
enum class EditOpKind : std::uint8_t {
  kAddNode = 0,
  kRemoveNode = 1,
  kAddEdge = 2,
  kRemoveEdge = 3,
};

/// Stable mnemonic ("add-node" / "remove-node" / "add-edge" /
/// "remove-edge") — the ndjson `op` field of `locwm delta`.
[[nodiscard]] std::string_view editOpKindName(EditOpKind kind) noexcept;

/// One edit, tagged by `kind`; only the fields of the matching builder
/// are meaningful.  Edges are named structurally (src, dst, edge kind),
/// not by edge id — the id space is an implementation detail of the
/// resident graph that an edit stream cannot know.
struct EditOp {
  EditOpKind kind = EditOpKind::kAddNode;
  OpKind op_kind = OpKind::kAdd;  ///< kAddNode
  std::string name;               ///< kAddNode (optional label)
  NodeId node;                    ///< kRemoveNode
  NodeId src;                     ///< kAddEdge / kRemoveEdge
  NodeId dst;                     ///< kAddEdge / kRemoveEdge
  EdgeKind edge_kind = EdgeKind::kData;  ///< kAddEdge / kRemoveEdge

  [[nodiscard]] static EditOp addNode(OpKind op, std::string name = {});
  [[nodiscard]] static EditOp removeNode(NodeId node);
  [[nodiscard]] static EditOp addEdge(NodeId src, NodeId dst,
                                      EdgeKind kind = EdgeKind::kData);
  [[nodiscard]] static EditOp removeEdge(NodeId src, NodeId dst,
                                         EdgeKind kind = EdgeKind::kData);
};

/// A batch of edits, applied in order.
struct EditDelta {
  std::vector<EditOp> ops;

  [[nodiscard]] bool empty() const noexcept { return ops.empty(); }
};

/// One rejected op: its index into EditDelta::ops plus the graph's reason.
struct RejectedOp {
  std::size_t index = 0;
  std::string reason;
};

/// What applyDelta changed — the seed set for incremental re-analysis.
struct AppliedDelta {
  /// Every node incident to an accepted edit (endpoints of added/removed
  /// edges, added/removed nodes), deduplicated, ascending.
  std::vector<NodeId> touched_nodes;
  std::vector<NodeId> added_nodes;
  std::vector<NodeId> removed_nodes;
  std::vector<EdgeId> added_edge_ids;
  std::vector<EdgeId> removed_edge_ids;
  /// Endpoint/kind copies of the removed edges (the graph keeps them
  /// addressable through edge(), but consumers want them in one place).
  std::vector<Edge> removed_edges;
  std::vector<RejectedOp> rejected;
  /// True when the CSR side re-lowered instead of patching.
  bool relowered = false;

  /// Did anything structural happen?
  [[nodiscard]] bool any() const noexcept {
    return !added_nodes.empty() || !removed_nodes.empty() ||
           !added_edge_ids.empty() || !removed_edge_ids.empty();
  }
};

/// A patchable CSR snapshot: base arena + overlay.  See file comment.
class CsrDelta {
 public:
  /// Lowers `g` as the base snapshot.  The graph must outlive the delta
  /// view (rebase() re-reads it).
  explicit CsrDelta(const Cdfg& g) : g_(&g), base_(g) {}

  CsrDelta(const CsrDelta&) = delete;
  CsrDelta& operator=(const CsrDelta&) = delete;
  CsrDelta(CsrDelta&&) noexcept = default;
  CsrDelta& operator=(CsrDelta&&) noexcept = default;

  [[nodiscard]] const CsrView& base() const noexcept { return base_; }
  [[nodiscard]] const Cdfg& graph() const noexcept { return *g_; }

  /// Node-id bound of the *current* graph (>= the base snapshot's).
  [[nodiscard]] std::size_t nodeCount() const noexcept {
    return g_->nodeCount();
  }

  /// Operation kind of `v` — base SoA table when snapshotted, builder
  /// fallback for nodes added since.  Tombstoned nodes keep their kind.
  [[nodiscard]] OpKind kind(NodeId v) const {
    return v.value() < base_.nodeCount() ? base_.kind(v)
                                         : g_->node(v).kind;
  }

  /// Records `id` (with endpoints/kind `e`) as an overlay half-edge pair.
  void addEdge(EdgeId id, const Edge& e);
  /// Forgets `id`: drops it from the overlay when it was added there,
  /// otherwise tombstones it out of the base arena.
  void removeEdge(EdgeId id, const Edge& e);

  [[nodiscard]] bool removed(EdgeId id) const {
    return !removed_.empty() && removed_.count(id.value()) != 0;
  }

  /// Overlay pressure, for the patch-vs-relower decision.
  [[nodiscard]] std::size_t overlaySize() const noexcept { return overlay_; }
  [[nodiscard]] std::size_t removedCount() const noexcept {
    return removed_.size();
  }

  /// Re-lowers the graph into a fresh base and clears the overlay.
  void rebase() {
    base_ = CsrView(*g_);
    out_add_.clear();
    in_add_.clear();
    removed_.clear();
    overlay_ = 0;
  }

  /// Does `sel` span edges of kind `k`?
  [[nodiscard]] static constexpr bool selAccepts(EdgeSel sel,
                                                EdgeKind k) noexcept {
    switch (sel) {
      case EdgeSel::kData:
        return k == EdgeKind::kData;
      case EdgeSel::kControl:
        return k == EdgeKind::kControl;
      case EdgeSel::kTemporal:
        return k == EdgeKind::kTemporal;
      case EdgeSel::kDataControl:
        return k != EdgeKind::kTemporal;
      case EdgeSel::kAll:
        return true;
    }
    return false;
  }

  /// Visits every live out-edge of `v` matching `sel` as
  /// fn(NodeId dst, EdgeId id, EdgeKind kind): base segments first (in
  /// arena order, removed ids skipped), then overlay adds in insertion
  /// order.  Consumers must reduce order-insensitively.
  template <typename Fn>
  void forEachOut(NodeId v, EdgeSel sel, Fn&& fn) const {
    if (v.value() < base_.nodeCount()) {
      for (const EdgeKind k : kCsrKindOrder) {
        if (!selAccepts(sel, k)) {
          continue;
        }
        const auto nodes = base_.successors(v, edgeSelOf(k));
        const auto ids = base_.outEdges(v, edgeSelOf(k));
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          if (removed(ids[i])) {
            continue;
          }
          fn(nodes[i], ids[i], k);
        }
      }
    }
    visitOverlay(out_add_, v, sel, fn);
  }

  /// In-edge mirror of forEachOut: fn(NodeId src, EdgeId id, EdgeKind).
  template <typename Fn>
  void forEachIn(NodeId v, EdgeSel sel, Fn&& fn) const {
    if (v.value() < base_.nodeCount()) {
      for (const EdgeKind k : kCsrKindOrder) {
        if (!selAccepts(sel, k)) {
          continue;
        }
        const auto nodes = base_.predecessors(v, edgeSelOf(k));
        const auto ids = base_.inEdges(v, edgeSelOf(k));
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          if (removed(ids[i])) {
            continue;
          }
          fn(nodes[i], ids[i], k);
        }
      }
    }
    visitOverlay(in_add_, v, sel, fn);
  }

 private:
  /// One overlay half-edge: the far endpoint of an added edge.
  struct AddedHalfEdge {
    NodeId other;
    EdgeId id;
    EdgeKind kind = EdgeKind::kData;
  };
  using OverlayMap =
      std::unordered_map<std::uint32_t, std::vector<AddedHalfEdge>>;

  template <typename Fn>
  static void visitOverlay(const OverlayMap& side, NodeId v, EdgeSel sel,
                           Fn&& fn) {
    if (side.empty()) {
      return;
    }
    const auto it = side.find(v.value());
    if (it == side.end()) {
      return;
    }
    for (const AddedHalfEdge& h : it->second) {
      if (selAccepts(sel, h.kind)) {
        fn(h.other, h.id, h.kind);
      }
    }
  }

  const Cdfg* g_ = nullptr;
  CsrView base_;
  OverlayMap out_add_;
  OverlayMap in_add_;
  std::unordered_set<std::uint32_t> removed_;
  std::size_t overlay_ = 0;
};

/// Applies `delta` to `g`, mirrors the accepted edits into `csr` (patching
/// or rebasing per the policy in the file comment), and returns the change
/// summary.  Ops the graph refuses are recorded in `rejected` and skipped.
AppliedDelta applyDelta(Cdfg& g, CsrDelta& csr, const EditDelta& delta);

}  // namespace locwm::cdfg
