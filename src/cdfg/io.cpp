#include "cdfg/io.h"

#include <sstream>
#include <vector>

namespace locwm::cdfg {

void print(std::ostream& os, const Cdfg& g) {
  os << "cdfg v1\n";
  for (const NodeId v : g.allNodes()) {
    const Node& n = g.node(v);
    os << "node " << v.value() << ' ' << opName(n.kind);
    if (!n.name.empty()) {
      os << ' ' << n.name;
    }
    os << '\n';
  }
  for (const EdgeId e : g.allEdges()) {
    const Edge& ed = g.edge(e);
    os << "edge " << ed.src.value() << ' ' << ed.dst.value() << ' '
       << edgeKindName(ed.kind) << '\n';
  }
}

std::string printToString(const Cdfg& g) {
  std::ostringstream os;
  print(os, g);
  return os.str();
}

namespace {

Cdfg parseImpl(std::istream& is, std::vector<ParseIssue>* issues,
               const std::string& source = {}) {
  Cdfg g;
  std::string line;
  std::size_t lineno = 0;
  bool sawHeader = false;
  const std::string where = source.empty() ? "" : source + ": ";
  auto fail = [&](const std::string& why) -> void {
    throw ParseError(where + "cdfg parse error at line " +
                     std::to_string(lineno) + ": " + why);
  };
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) {
      continue;  // blank
    }
    if (word == "cdfg") {
      std::string version;
      if (!(ls >> version) || version != "v1") {
        fail("unsupported version");
      }
      sawHeader = true;
    } else if (word == "node") {
      if (!sawHeader) {
        fail("missing 'cdfg v1' header");
      }
      std::uint32_t index = 0;
      std::string op;
      std::string label;
      if (!(ls >> index >> op)) {
        fail("malformed node line");
      }
      ls >> label;  // optional
      if (index != g.nodeCount()) {
        fail("node indices must be dense and ascending");
      }
      const auto kind = opFromName(op);
      if (!kind) {
        fail("unknown operation '" + op + "'");
      }
      g.addNode(*kind, label);
    } else if (word == "edge") {
      if (!sawHeader) {
        fail("missing 'cdfg v1' header");
      }
      std::uint32_t src = 0;
      std::uint32_t dst = 0;
      std::string kindName;
      if (!(ls >> src >> dst >> kindName)) {
        fail("malformed edge line");
      }
      EdgeKind kind = EdgeKind::kData;
      if (kindName == "data") {
        kind = EdgeKind::kData;
      } else if (kindName == "control") {
        kind = EdgeKind::kControl;
      } else if (kindName == "temporal") {
        kind = EdgeKind::kTemporal;
      } else {
        fail("unknown edge kind '" + kindName + "'");
      }
      if (src >= g.nodeCount() || dst >= g.nodeCount()) {
        if (!issues) {
          fail("edge references undeclared node");
        }
        issues->push_back(
            {ParseIssue::Kind::kDanglingEdge, lineno, src, dst, kind,
             source});
        continue;
      }
      if (issues && src == dst) {
        issues->push_back(
            {ParseIssue::Kind::kSelfEdge, lineno, src, dst, kind, source});
        continue;
      }
      if (issues && kind == EdgeKind::kTemporal &&
          g.hasEdge(NodeId(src), NodeId(dst), EdgeKind::kTemporal)) {
        issues->push_back({ParseIssue::Kind::kDuplicateTemporal, lineno,
                           src, dst, kind, source});
        continue;
      }
      g.addEdge(NodeId(src), NodeId(dst), kind);
    } else {
      fail("unknown directive '" + word + "'");
    }
  }
  if (!sawHeader) {
    throw ParseError(where + "cdfg parse error: empty input");
  }
  if (!issues) {
    g.checkAcyclic();
  } else {
    try {
      g.checkAcyclic();
    } catch (const GraphError&) {
      issues->push_back(
          {ParseIssue::Kind::kCycle, 0, 0, 0, EdgeKind::kData, source});
    }
  }
  return g;
}

}  // namespace

Cdfg parse(std::istream& is) { return parseImpl(is, nullptr); }

Cdfg parse(std::istream& is, std::vector<ParseIssue>& issues,
           const std::string& source) {
  return parseImpl(is, &issues, source);
}

Cdfg parseString(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

Cdfg parseString(const std::string& text, std::vector<ParseIssue>& issues,
                 const std::string& source) {
  std::istringstream is(text);
  return parse(is, issues, source);
}

}  // namespace locwm::cdfg
