// Keyed pseudorandom bitstream — the single randomness source of the
// watermarking protocols.
//
// Every pseudorandom decision in the paper's protocols (root selection,
// BFS include/exclude bits, K-node selection, temporal-edge endpoints,
// matching picks) is drawn from this stream.  Because the stream is a pure
// function of the author signature (plus a per-purpose context string),
// the *detector* can replay the embedding decisions exactly — which is how
// detection works at all.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/rc4.h"
#include "crypto/sha256.h"

namespace locwm::crypto {

/// An author's signature: free-form identity text plus an optional
/// per-design nonce so one author can mark many designs differently.
struct AuthorSignature {
  std::string identity;  ///< e.g. "Jane Doe <jane@example.com>"
  std::string nonce;     ///< e.g. design name or release tag

  /// Key material: SHA-256(identity || 0x00 || nonce).
  [[nodiscard]] Sha256Digest keyMaterial() const;
};

/// Deterministic bit/integer source keyed by an author signature.
class KeyedBitstream {
 public:
  /// `context` domain-separates independent uses (e.g. "sched-wm" vs
  /// "tm-wm") so protocols never share bits.  The first 256 keystream
  /// bytes are dropped (RC4-drop hardening).
  KeyedBitstream(const AuthorSignature& signature, std::string_view context);

  /// Next pseudorandom bit (MSB-first through the keystream bytes).
  [[nodiscard]] bool nextBit();

  /// Next `count` bits packed big-endian into an integer; count <= 64.
  [[nodiscard]] std::uint64_t nextBits(unsigned count);

  /// Uniform integer in [0, bound) via rejection sampling (unbiased).
  /// bound must be positive.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Bernoulli draw with probability numerator/denominator.
  [[nodiscard]] bool chance(std::uint64_t numerator, std::uint64_t denominator);

  /// Number of bits consumed so far (diagnostics / strength reporting).
  [[nodiscard]] std::uint64_t bitsConsumed() const noexcept {
    return bits_consumed_;
  }

 private:
  Rc4 rc4_;
  std::uint8_t current_ = 0;
  unsigned bits_left_ = 0;
  std::uint64_t bits_consumed_ = 0;
};

}  // namespace locwm::crypto
