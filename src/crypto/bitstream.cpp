#include "crypto/bitstream.h"

#include <bit>
#include <stdexcept>

#include "obs/obs.h"

namespace locwm::crypto {

namespace {

Sha256Digest deriveKey(const AuthorSignature& signature,
                       std::string_view context) {
  Sha256 h;
  h.update(signature.identity);
  const std::uint8_t sep = 0;
  h.update(std::span<const std::uint8_t>(&sep, 1));
  h.update(signature.nonce);
  h.update(std::span<const std::uint8_t>(&sep, 1));
  h.update(context);
  return h.finish();
}

}  // namespace

Sha256Digest AuthorSignature::keyMaterial() const {
  Sha256 h;
  h.update(identity);
  const std::uint8_t sep = 0;
  h.update(std::span<const std::uint8_t>(&sep, 1));
  h.update(nonce);
  return h.finish();
}

KeyedBitstream::KeyedBitstream(const AuthorSignature& signature,
                               std::string_view context)
    : rc4_(
          [&] {
            if (signature.identity.empty()) {
              throw std::invalid_argument(
                  "author signature identity must not be empty");
            }
            return deriveKey(signature, context);
          }(),
          /*drop=*/256) {
  LOCWM_OBS_COUNT("crypto.bitstream.streams_keyed", 1);
}

bool KeyedBitstream::nextBit() {
  if (bits_left_ == 0) {
    current_ = rc4_.nextByte();
    bits_left_ = 8;
    LOCWM_OBS_COUNT("crypto.bitstream.bytes_drawn", 1);
  }
  --bits_left_;
  ++bits_consumed_;
  return ((static_cast<unsigned>(current_) >> bits_left_) & 1u) != 0;
}

std::uint64_t KeyedBitstream::nextBits(unsigned count) {
  if (count > 64) {
    throw std::invalid_argument("nextBits: count > 64");
  }
  std::uint64_t value = 0;
  for (unsigned i = 0; i < count; ++i) {
    value = (value << 1) | (nextBit() ? 1u : 0u);
  }
  return value;
}

std::uint64_t KeyedBitstream::below(std::uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("below: bound must be positive");
  }
  if (bound == 1) {
    return 0;
  }
  const unsigned bits = static_cast<unsigned>(std::bit_width(bound - 1));
  for (;;) {
    const std::uint64_t draw = nextBits(bits);
    if (draw < bound) {
      return draw;
    }
  }
}

bool KeyedBitstream::chance(std::uint64_t numerator,
                            std::uint64_t denominator) {
  if (denominator == 0) {
    throw std::invalid_argument("chance: zero denominator");
  }
  return below(denominator) < numerator;
}

}  // namespace locwm::crypto
