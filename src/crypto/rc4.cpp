#include "crypto/rc4.h"

#include <stdexcept>
#include <utility>

namespace locwm::crypto {

Rc4::Rc4(std::span<const std::uint8_t> key, std::size_t drop) {
  if (key.empty() || key.size() > 256) {
    throw std::invalid_argument("RC4 key must be 1..256 bytes");
  }
  for (std::size_t i = 0; i < 256; ++i) {
    s_[i] = static_cast<std::uint8_t>(i);
  }
  std::uint8_t j = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + s_[i] + key[i % key.size()]);
    std::swap(s_[i], s_[j]);
  }
  for (std::size_t k = 0; k < drop; ++k) {
    (void)nextByte();
  }
}

std::uint8_t Rc4::nextByte() noexcept {
  i_ = static_cast<std::uint8_t>(i_ + 1);
  j_ = static_cast<std::uint8_t>(j_ + s_[i_]);
  std::swap(s_[i_], s_[j_]);
  return s_[static_cast<std::uint8_t>(s_[i_] + s_[j_])];
}

void Rc4::crypt(std::span<std::uint8_t> data) noexcept {
  for (std::uint8_t& byte : data) {
    byte ^= nextByte();
  }
}

}  // namespace locwm::crypto
