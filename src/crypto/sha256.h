// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used to digest an author's free-form signature text into the fixed-size
// key material that seeds the RC4 bitstream generator.  The one-way
// property of the hash + cipher chain is what prevents an adversary from
// inverting the bitstream to forge a signature for an existing solution
// (paper §IV-A, "third" property).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace locwm::crypto {

/// A 256-bit digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorbs `data`.  May be called repeatedly.
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept;

  /// Finalizes and returns the digest.  The object must not be updated
  /// afterwards (create a new one instead).
  [[nodiscard]] Sha256Digest finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Sha256Digest hash(std::string_view text) noexcept;

 private:
  void processBlock(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t bit_length_ = 0;
  std::size_t buffered_ = 0;
};

/// Lowercase hex rendering of a digest.
[[nodiscard]] std::string toHex(const Sha256Digest& digest);

}  // namespace locwm::crypto
