// RC4 stream cipher (KSA + PRGA), implemented from scratch.
//
// The paper keys its pseudorandom constraint selection with "the RC4 stream
// cipher by iteratively encrypting a certain standard seed number keyed
// with the author's digital signature" (§IV-A).  We reproduce exactly that
// construction: the author signature is digested (SHA-256) into the RC4
// key, and the keystream drives every pseudorandom decision of the
// watermarking protocols.
//
// RC4 is cryptographically retired for confidentiality, but here it serves
// the paper's role — a keyed one-way bit source — and its early-keystream
// biases are mitigated by discarding a configurable prefix (RC4-drop).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace locwm::crypto {

/// RC4 keystream generator.
class Rc4 {
 public:
  /// Key-schedules with `key` (1..256 bytes) and discards the first
  /// `drop` keystream bytes (conventional hardening; 0 reproduces the
  /// textbook cipher and its published test vectors).
  explicit Rc4(std::span<const std::uint8_t> key, std::size_t drop = 0);

  /// Next keystream byte (PRGA step).
  [[nodiscard]] std::uint8_t nextByte() noexcept;

  /// XOR-encrypts `data` in place with the keystream (provided for
  /// completeness; the watermarking protocols use the raw keystream).
  void crypt(std::span<std::uint8_t> data) noexcept;

 private:
  std::array<std::uint8_t, 256> s_{};
  std::uint8_t i_ = 0;
  std::uint8_t j_ = 0;
};

}  // namespace locwm::crypto
