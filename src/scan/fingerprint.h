// Locality fingerprints — the corpus scan's sound pre-filter.
//
// The screen rests on one invariant of locality derivation (locality.cpp,
// derive() Step 1a/3): every carved node is a member of the directed
// copy-transparent fanin ball of radius max_distance around the root, and
// the contracted shape preserves node kinds.  So for any certificate that
// matches at a root, the shape's operation-kind histogram is
// component-wise <= the histogram of that root's fanin ball — regardless
// of the key, the carve probabilities, or the canonical ordering.  The
// ball grows monotonically with radius, so one design-side radius
// R = max(max_distance over the key ring) is sound for every certificate.
//
// Histograms are encoded as saturating threshold bits (6 per kind:
// count >= 1, 2, 3, 4, 6, 8), making "can nest inside" one O(1) bitwise
// subset test per pair.  The encoding is monotone — bigger counts only set more
// bits — which yields two sound aggregates for free:
//
//  * per root kind, OR-ing root fingerprints equals the encoding of the
//    component-wise max histogram, giving a design-level screen per
//    (certificate, root kind) before any per-root work;
//  * whole-design (tm) certificates screen against the design's real-op
//    histogram, the superset wholeDesign() selects from.
//
// The pre-filter can therefore never drop a true match (proven by the
// CorpusScan oracle tests); its payoff is precision.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cdfg/graph.h"
#include "cdfg/operation.h"
#include "core/locality.h"

namespace locwm::scan {

/// Saturating threshold encoding of an operation-kind histogram:
/// bit (kind*6 + t) is set iff count(kind) >= {1, 2, 3, 4, 6, 8}[t].  With
/// kOpKindCount kinds this needs kOpKindCount*6 bits, packed little-end
/// first into two 64-bit words.
struct KindFingerprint {
  std::array<std::uint64_t, 2> bits{};

  /// True when every set bit of `needle` is set here — i.e. the histogram
  /// `needle` encodes *can* nest component-wise inside this one.  The
  /// encoding is lossy above the top threshold, so this is necessary, not
  /// sufficient: exactly the one-sided error a sound pre-filter needs.
  [[nodiscard]] bool covers(const KindFingerprint& needle) const noexcept {
    return (needle.bits[0] & ~bits[0]) == 0 &&
           (needle.bits[1] & ~bits[1]) == 0;
  }

  /// Bitwise OR — the encoding of the component-wise max histogram.
  void merge(const KindFingerprint& other) noexcept {
    bits[0] |= other.bits[0];
    bits[1] |= other.bits[1];
  }

  [[nodiscard]] bool operator==(const KindFingerprint& other) const noexcept {
    return bits == other.bits;
  }
};

static_assert(cdfg::kOpKindCount * 6 <= 128,
              "KindFingerprint packs 6 threshold bits per op kind into two "
              "64-bit words");

/// Threshold-bit encoding of a kind histogram.
[[nodiscard]] KindFingerprint fingerprintOfCounts(
    const std::array<std::uint32_t, cdfg::kOpKindCount>& counts) noexcept;

/// Fingerprint of a certificate shape (node-kind histogram; every shape
/// node is a real operation by construction).
[[nodiscard]] KindFingerprint shapeFingerprint(const cdfg::Cdfg& shape);

/// Per-design fingerprint index: one fanin-ball fingerprint per candidate
/// root plus the two aggregates described in the file comment.  Built once
/// per design at the ring-wide radius and reused for every certificate.
struct DesignIndex {
  /// Radius the root fingerprints were computed at.  Sound for every
  /// certificate with locality max_distance <= radius.
  std::uint32_t radius = 0;
  /// candidateRoots() of the design, ascending.
  std::vector<cdfg::NodeId> roots;
  /// Operation kind per root (dense enum value), aligned with `roots`.
  std::vector<std::uint8_t> root_kinds;
  /// Directed fanin-ball fingerprint per root, aligned with `roots`.
  std::vector<KindFingerprint> root_fps;
  /// Radius-1 ball fingerprint per root (the root and its copy-transparent
  /// direct real predecessors).  A certificate that records its anchor's
  /// rank knows the shape root's direct predecessors, and every one of
  /// them is a direct real predecessor of a matching design root — so
  /// this screens far more sharply than the full-radius ball.
  std::vector<KindFingerprint> root_fps1;
  /// OR of root_fps grouped by root kind — the design-level screen.
  std::array<KindFingerprint, cdfg::kOpKindCount> kind_union{};
  /// Fingerprint of every real operation — the whole-design screen.
  KindFingerprint design_fp;

  [[nodiscard]] bool operator==(const DesignIndex& other) const = default;
};

/// Builds the index from a lowered design.  Per-root fingerprints are
/// computed in parallel on the rt pool (each slot is an independent pure
/// function of the graph), so the result is thread-count invariant.
[[nodiscard]] DesignIndex buildDesignIndex(const wm::LocalityDeriver& deriver,
                                           std::uint32_t radius);

/// Serializes an index for the scan fingerprint cache.  Line-oriented,
/// versioned; kind_union/design_fp are recomputed on load from the root
/// entries plus the stored design fingerprint.
[[nodiscard]] std::string indexToString(const DesignIndex& index);

/// Strict inverse of indexToString: anything unexpected — wrong header,
/// malformed line, trailing garbage — returns nullopt (a cache miss,
/// never a wrong answer).
[[nodiscard]] std::optional<DesignIndex> parseIndex(const std::string& text);

}  // namespace locwm::scan
