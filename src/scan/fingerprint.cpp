#include "scan/fingerprint.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "obs/obs.h"
#include "rt/rt.h"

namespace locwm::scan {

namespace {

constexpr std::array<std::uint32_t, 6> kThresholds{1, 2, 3, 4, 6, 8};

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

bool parseHex64(const std::string& token, std::uint64_t& out) {
  if (token.size() != 16) {
    return false;
  }
  std::uint64_t v = 0;
  for (const char c : token) {
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  out = v;
  return true;
}

}  // namespace

KindFingerprint fingerprintOfCounts(
    const std::array<std::uint32_t, cdfg::kOpKindCount>& counts) noexcept {
  KindFingerprint fp;
  for (std::size_t kind = 0; kind < cdfg::kOpKindCount; ++kind) {
    for (std::size_t t = 0; t < kThresholds.size(); ++t) {
      if (counts[kind] >= kThresholds[t]) {
        const std::size_t bit = kind * kThresholds.size() + t;
        fp.bits[bit >> 6] |= std::uint64_t{1} << (bit & 63);
      }
    }
  }
  return fp;
}

KindFingerprint shapeFingerprint(const cdfg::Cdfg& shape) {
  std::array<std::uint32_t, cdfg::kOpKindCount> counts{};
  for (const cdfg::Node& n : shape.nodes()) {
    counts[static_cast<std::size_t>(n.kind)] += 1;
  }
  return fingerprintOfCounts(counts);
}

DesignIndex buildDesignIndex(const wm::LocalityDeriver& deriver,
                             std::uint32_t radius) {
  LOCWM_OBS_LATENCY("scan.fingerprint.build_ns");
  DesignIndex index;
  index.radius = radius;
  index.roots = deriver.candidateRoots();
  index.root_kinds.resize(index.roots.size());
  index.root_fps.resize(index.roots.size());
  index.root_fps1.resize(index.roots.size());
  rt::parallel_for(0, index.roots.size(), /*grain=*/8, [&](std::size_t i) {
    const cdfg::NodeId root = index.roots[i];
    index.root_kinds[i] =
        static_cast<std::uint8_t>(deriver.csr().kind(root));
    index.root_fps[i] =
        fingerprintOfCounts(deriver.faninKindCounts(root, radius));
    index.root_fps1[i] =
        fingerprintOfCounts(deriver.faninKindCounts(root, 1));
  });
  for (std::size_t i = 0; i < index.roots.size(); ++i) {
    index.kind_union[index.root_kinds[i]].merge(index.root_fps[i]);
  }
  index.design_fp = fingerprintOfCounts(deriver.realKindCounts());
  LOCWM_OBS_COUNT("scan.fingerprint.roots", index.roots.size());
  return index;
}

std::string indexToString(const DesignIndex& index) {
  std::ostringstream os;
  os << "locwm-scanfp v2\n";
  os << "radius " << index.radius << '\n';
  os << "design " << hex64(index.design_fp.bits[0]) << ' '
     << hex64(index.design_fp.bits[1]) << '\n';
  for (std::size_t i = 0; i < index.roots.size(); ++i) {
    os << "root " << index.roots[i].value() << ' '
       << static_cast<std::uint32_t>(index.root_kinds[i]) << ' '
       << hex64(index.root_fps[i].bits[0]) << ' '
       << hex64(index.root_fps[i].bits[1]) << ' '
       << hex64(index.root_fps1[i].bits[0]) << ' '
       << hex64(index.root_fps1[i].bits[1]) << '\n';
  }
  return os.str();
}

std::optional<DesignIndex> parseIndex(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "locwm-scanfp v2") {
    return std::nullopt;
  }
  DesignIndex index;
  bool have_radius = false;
  bool have_design = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) {
      return std::nullopt;  // blank lines are not part of the format
    }
    std::string trailing;
    if (word == "radius") {
      if (have_radius || !(ls >> index.radius) || (ls >> trailing)) {
        return std::nullopt;
      }
      have_radius = true;
    } else if (word == "design") {
      std::string w0;
      std::string w1;
      if (have_design || !(ls >> w0 >> w1) || (ls >> trailing) ||
          !parseHex64(w0, index.design_fp.bits[0]) ||
          !parseHex64(w1, index.design_fp.bits[1])) {
        return std::nullopt;
      }
      have_design = true;
    } else if (word == "root") {
      std::uint32_t id = 0;
      std::uint32_t kind = 0;
      std::string w0;
      std::string w1;
      std::string r0;
      std::string r1;
      KindFingerprint fp;
      KindFingerprint fp1;
      if (!(ls >> id >> kind >> w0 >> w1 >> r0 >> r1) || (ls >> trailing) ||
          kind >= cdfg::kOpKindCount || !parseHex64(w0, fp.bits[0]) ||
          !parseHex64(w1, fp.bits[1]) || !parseHex64(r0, fp1.bits[0]) ||
          !parseHex64(r1, fp1.bits[1])) {
        return std::nullopt;
      }
      if (!index.roots.empty() && index.roots.back().value() >= id) {
        return std::nullopt;  // roots must be strictly ascending
      }
      index.roots.push_back(cdfg::NodeId(id));
      index.root_kinds.push_back(static_cast<std::uint8_t>(kind));
      index.root_fps.push_back(fp);
      index.root_fps1.push_back(fp1);
    } else {
      return std::nullopt;
    }
  }
  if (!have_radius || !have_design) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < index.roots.size(); ++i) {
    index.kind_union[index.root_kinds[i]].merge(index.root_fps[i]);
  }
  return index;
}

}  // namespace locwm::scan
