#include "scan/keyring.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "cdfg/error.h"
#include "core/certificate_io.h"

namespace locwm::scan {

namespace fs = std::filesystem;

const char* certKindName(CertKind kind) noexcept {
  switch (kind) {
    case CertKind::kSched:
      return "sched";
    case CertKind::kTm:
      return "tm";
    case CertKind::kReg:
      return "reg";
  }
  return "?";
}

const wm::LocalityParams& KeyRingEntry::localityParams() const {
  switch (kind) {
    case CertKind::kTm:
      return tm->locality_params;
    case CertKind::kReg:
      return reg->locality_params;
    case CertKind::kSched:
      break;
  }
  return sched->locality_params;
}

namespace {

/// Splits a ring line into tokens: whitespace-separated, double quotes
/// group, backslash escapes the next character inside quotes.  Returns
/// nullopt on an unterminated quote.
std::optional<std::vector<std::string>> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (line[i] == ' ' || line[i] == '\t') {
      ++i;
      continue;
    }
    std::string token;
    if (line[i] == '"') {
      ++i;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          token.push_back(line[i + 1]);
          i += 2;
        } else if (line[i] == '"') {
          ++i;
          closed = true;
          break;
        } else {
          token.push_back(line[i]);
          ++i;
        }
      }
      if (!closed) {
        return std::nullopt;
      }
    } else {
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
        token.push_back(line[i]);
        ++i;
      }
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

/// Quotes a token for toText() when it contains whitespace, quotes, or a
/// '#' (which would read back as a comment).
std::string quoteToken(const std::string& token) {
  const bool needs =
      token.empty() ||
      token.find_first_of(" \t\"#\\") != std::string::npos;
  if (!needs) {
    return token;
  }
  std::string out = "\"";
  for (const char c : token) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Reads the "locwm-cert v1 <kind>" header word of a certificate text.
std::optional<CertKind> sniffCertKind(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string magic;
    if (!(ls >> magic)) {
      continue;
    }
    std::string version;
    std::string kind;
    if (magic != "locwm-cert" || !(ls >> version >> kind) ||
        version != "v1") {
      return std::nullopt;
    }
    if (kind == "sched") {
      return CertKind::kSched;
    }
    if (kind == "tm") {
      return CertKind::kTm;
    }
    if (kind == "reg") {
      return CertKind::kReg;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

KeyRingEntry loadEntry(crypto::AuthorSignature signature,
                       std::string cert_path, const std::string& resolved) {
  std::ifstream is(resolved);
  detail::check<Error>(static_cast<bool>(is),
                       resolved + ": cannot open certificate");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  const std::optional<CertKind> kind = sniffCertKind(text);
  detail::check<ParseError>(kind.has_value(),
                            resolved + ": not a locwm-cert v1 artifact");
  KeyRingEntry entry;
  entry.signature = std::move(signature);
  entry.cert_path = std::move(cert_path);
  entry.kind = *kind;
  std::istringstream cs(text);
  switch (*kind) {
    case CertKind::kSched:
      entry.sched = wm::parseSchedCertificate(
          cs, wm::CertValidation::kStrict, resolved);
      break;
    case CertKind::kTm:
      entry.tm =
          wm::parseTmCertificate(cs, wm::CertValidation::kStrict, resolved);
      break;
    case CertKind::kReg:
      entry.reg =
          wm::parseRegCertificate(cs, wm::CertValidation::kStrict, resolved);
      break;
  }
  return entry;
}

}  // namespace

KeyRing KeyRing::fromFile(const std::string& path) {
  std::ifstream is(path);
  detail::check<Error>(static_cast<bool>(is),
                       path + ": cannot open key ring");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return fromText(buffer.str(), path,
                  fs::path(path).parent_path().string());
}

KeyRing KeyRing::fromText(const std::string& text, const std::string& name,
                          const std::string& base_dir) {
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  bool have_header = false;
  KeyRing ring;
  const auto fail = [&](const std::string& why) -> void {
    throw ParseError(name + ": key-ring parse error at line " +
                     std::to_string(lineno) + ": " + why);
  };
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    const std::optional<std::vector<std::string>> tokens = tokenize(line);
    if (!tokens.has_value()) {
      fail("unterminated quote");
    }
    if (tokens->empty()) {
      continue;
    }
    if (!have_header) {
      if (tokens->size() != 2 || (*tokens)[0] != "locwm-keyring" ||
          (*tokens)[1] != "v1") {
        fail("missing 'locwm-keyring v1' header");
      }
      have_header = true;
      continue;
    }
    if ((*tokens)[0] != "key") {
      fail("unknown directive '" + (*tokens)[0] + "'");
    }
    if (tokens->size() != 4) {
      fail("'key' needs <identity> <nonce> <cert-path>");
    }
    crypto::AuthorSignature signature;
    signature.identity = (*tokens)[1];
    signature.nonce = (*tokens)[2];
    const std::string& cert_path = (*tokens)[3];
    const fs::path rel(cert_path);
    const std::string resolved =
        (rel.is_absolute() || base_dir.empty())
            ? cert_path
            : (fs::path(base_dir) / rel).string();
    ring.entries_.push_back(
        loadEntry(std::move(signature), cert_path, resolved));
  }
  if (!have_header) {
    throw ParseError(name + ": key-ring parse error: empty input");
  }
  return ring;
}

void KeyRing::add(crypto::AuthorSignature signature, std::string cert_path,
                  wm::WatermarkCertificate cert) {
  KeyRingEntry entry;
  entry.signature = std::move(signature);
  entry.cert_path = std::move(cert_path);
  entry.kind = CertKind::kSched;
  entry.sched = std::move(cert);
  entries_.push_back(std::move(entry));
}

void KeyRing::add(crypto::AuthorSignature signature, std::string cert_path,
                  wm::TmCertificate cert) {
  KeyRingEntry entry;
  entry.signature = std::move(signature);
  entry.cert_path = std::move(cert_path);
  entry.kind = CertKind::kTm;
  entry.tm = std::move(cert);
  entries_.push_back(std::move(entry));
}

void KeyRing::add(crypto::AuthorSignature signature, std::string cert_path,
                  wm::RegCertificate cert) {
  KeyRingEntry entry;
  entry.signature = std::move(signature);
  entry.cert_path = std::move(cert_path);
  entry.kind = CertKind::kReg;
  entry.reg = std::move(cert);
  entries_.push_back(std::move(entry));
}

std::string KeyRing::toText() const {
  std::string out = "locwm-keyring v1\n";
  for (const KeyRingEntry& entry : entries_) {
    out += "key " + quoteToken(entry.signature.identity) + ' ' +
           quoteToken(entry.signature.nonce) + ' ' +
           quoteToken(entry.cert_path) + '\n';
  }
  return out;
}

std::uint32_t KeyRing::maxRadius() const noexcept {
  std::uint32_t radius = 0;
  for (const KeyRingEntry& entry : entries_) {
    radius = std::max(radius, entry.localityParams().max_distance);
  }
  return radius;
}

}  // namespace locwm::scan
