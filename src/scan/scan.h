// The sharded corpus-scan driver (ROADMAP item 2): given a corpus of
// designs and a key ring of certificates, find every (design, certificate)
// match.  Each design is lowered to a CsrView once; candidate pairs pass
// through the O(1) locality-fingerprint screen (scan/fingerprint.h) and
// only the survivors go to exact detector replay.  The screen is *sound*:
// a pruned pair can never be a true match, so recall is always 1.0.
//
// Output is one ndjson row block per design — a `design` summary row
// followed by one `match` row per detected certificate, in ring order.
// Rows carry no timing and each block is a pure function of (item, ring,
// options), so merged output is byte-identical at any thread count and
// across `--shard i/N` splits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scan/corpus.h"
#include "scan/keyring.h"

namespace locwm::scan {

struct ScanOptions {
  /// Run the locality-fingerprint screen before exact replay.  Off =
  /// replay every pair at every candidate root (the oracle baseline).
  bool prefilter = true;
  /// Multi-process sharding: this invocation scans items whose index i
  /// satisfies i % shard_count == shard_index.  Row blocks keep their item
  /// index, so concatenating all shards' rows in index order reproduces
  /// the unsharded output byte for byte.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Directory for the fingerprint cache ("" = cache off).  Entries are
  /// keyed by (format version, radius, item path, design-text digest), so
  /// unchanged designs skip re-fingerprinting — and skip parsing entirely
  /// when every pair is pruned.
  std::string cache_dir;
  /// Enumeration budget for the aggregate Pc of fully-matched scheduling
  /// certificates (smaller than the detect-CLI default: a corpus scan
  /// ranks hits, it does not litigate them).
  std::uint64_t pc_max_steps = 200'000;
};

/// Counters for --stats (shard-local).
struct ScanStats {
  std::size_t designs = 0;          ///< items scanned by this shard
  std::size_t pairs = 0;            ///< (design, certificate) pairs seen
  std::size_t pruned_pairs = 0;     ///< pairs dropped by the fingerprint screen
  std::size_t survivor_pairs = 0;   ///< pairs sent to exact replay
  std::size_t candidate_roots = 0;  ///< roots exact replay had to visit
  std::size_t match_pairs = 0;      ///< pairs with at least one shape match
  std::size_t parse_failures = 0;   ///< designs that failed to parse
  std::size_t cache_cold = 0;       ///< fingerprint cache misses (stored)
  std::size_t cache_warm = 0;       ///< fingerprint cache hits
};

struct ScanResult {
  /// ndjson rows (no trailing newlines), blocks in item-index order.
  std::vector<std::string> rows;
  ScanStats stats;
};

/// Scans this shard of `items` against `ring`.  Items are processed in
/// parallel on the rt pool with row blocks folded back serially, so the
/// result is thread-count invariant.  Throws nothing per item: a design
/// that fails to parse produces an `error` design row.
[[nodiscard]] ScanResult scanCorpus(const std::vector<CorpusItem>& items,
                                    const KeyRing& ring,
                                    const ScanOptions& options = {});

}  // namespace locwm::scan
