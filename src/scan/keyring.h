// Key rings — the certificate collection a corpus scan searches for.
//
// A ring names, per entry, the author signature a certificate was embedded
// under and the certificate file itself; the scanner screens and replays
// every (design, entry) pair.  On-disk format (line oriented, '#'
// comments):
//
//   locwm-keyring v1
//   key <identity> <nonce> <cert-path>
//
// Tokens may be double-quoted to carry spaces ("ACME Corp."); a backslash
// escapes the next character inside quotes.  Certificate paths are
// resolved relative to the ring file's directory, so a ring travels with
// its certificates.  All three certificate kinds (sched/tm/reg) are
// accepted; the kind is sniffed from the certificate header.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/reg_wm.h"
#include "core/sched_wm.h"
#include "core/tm_wm.h"
#include "crypto/bitstream.h"

namespace locwm::scan {

enum class CertKind : std::uint8_t { kSched, kTm, kReg };

/// Stable mnemonic ("sched", "tm", "reg") for JSON rows.
[[nodiscard]] const char* certKindName(CertKind kind) noexcept;

/// One ring entry: a signature plus exactly one parsed certificate
/// (matching `kind`).
struct KeyRingEntry {
  crypto::AuthorSignature signature;
  /// Certificate path as written in the ring (JSON row identity).
  std::string cert_path;
  CertKind kind = CertKind::kSched;
  std::optional<wm::WatermarkCertificate> sched;
  std::optional<wm::TmCertificate> tm;
  std::optional<wm::RegCertificate> reg;

  /// The entry's locality parameters, whichever certificate kind holds it.
  [[nodiscard]] const wm::LocalityParams& localityParams() const;
};

class KeyRing {
 public:
  /// Loads a ring and every certificate it references.  Throws Error on a
  /// malformed ring or certificate (messages carry the offending path).
  [[nodiscard]] static KeyRing fromFile(const std::string& path);

  /// Parses ring text.  `name` labels errors; `base_dir` anchors relative
  /// certificate paths ("" = current directory).
  [[nodiscard]] static KeyRing fromText(const std::string& text,
                                       const std::string& name,
                                       const std::string& base_dir);

  /// In-memory construction (tests, the shared corpus fixture).
  void add(crypto::AuthorSignature signature, std::string cert_path,
           wm::WatermarkCertificate cert);
  void add(crypto::AuthorSignature signature, std::string cert_path,
           wm::TmCertificate cert);
  void add(crypto::AuthorSignature signature, std::string cert_path,
           wm::RegCertificate cert);

  [[nodiscard]] const std::vector<KeyRingEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Serializes the ring (header + one `key` line per entry, tokens quoted
  /// as needed).  Certificate files are NOT written — cert_path is emitted
  /// as stored.
  [[nodiscard]] std::string toText() const;

  /// The widest locality radius in the ring (the sound design-side
  /// fingerprint radius); 0 for an empty ring.
  [[nodiscard]] std::uint32_t maxRadius() const noexcept;

 private:
  std::vector<KeyRingEntry> entries_;
};

}  // namespace locwm::scan
