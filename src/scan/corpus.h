// Corpus plumbing for the fleet scanner, in two halves:
//
//  * the *shared random-corpus fixture* — one seeded generator producing
//    identical design/schedule/key-ring corpora for tests, benches, and CI
//    smoke runs (previously ad-hoc per bench), with ground-truth planted
//    (design, certificate) pairs for recall measurement;
//
//  * *loaders* turning an on-disk directory or an ndjson manifest into the
//    in-memory item list scanCorpus() consumes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "scan/keyring.h"

namespace locwm::scan {

/// One scannable corpus entry: a design and (optionally) its schedule.
/// Texts are held in memory; `path`/`schedule_path` are display names
/// (relative to the corpus root when loaded from disk).
struct CorpusItem {
  std::string path;
  std::string design_text;
  std::string schedule_path;  ///< "" when the item has no schedule
  std::string schedule_text;
};

/// Parameters of the random fixture.
struct CorpusSpec {
  std::size_t designs = 50;
  /// Per-design operation count, drawn uniformly from [ops_min, ops_max].
  std::size_t ops_min = 48;
  std::size_t ops_max = 112;
  std::size_t inputs = 8;
  std::size_t width = 12;
  /// Emit a list schedule per design (required for schedule-level replay).
  bool schedules = true;
  /// Scheduling-watermark certificates to embed and ring up.  Entry j is
  /// planted into design floor(j * designs / ring) (next design on embed
  /// failure), so marks spread across the corpus.
  std::size_t ring = 0;
  std::string identity = "corpus-author";
};

/// A generated corpus plus everything needed to scan and score it.
struct BuiltCorpus {
  std::vector<CorpusItem> items;
  KeyRing ring;
  /// Serialized certificate per ring entry (aligned with ring.entries()),
  /// for writeCorpus and for tests exercising the text round trip.
  std::vector<std::string> cert_texts;
  /// Ground truth: (item index, ring entry index) pairs that were embedded
  /// — the matches a sound scan must find.
  std::vector<std::pair<std::size_t, std::size_t>> planted;
};

/// Deterministic function of (spec, seed): every design gets its own
/// substreamSeed(seed, i) PRNG substream, so the corpus is independent of
/// generation order and thread count.  Throws Error when a ring entry
/// cannot be embedded anywhere (pathological specs only).
[[nodiscard]] BuiltCorpus buildRandomCorpus(const CorpusSpec& spec,
                                            std::uint64_t seed);

/// Writes a built corpus under `dir`: one `<item.path>` design file and
/// `<schedule_path>` per item, certificates under `certs/`, and the ring
/// as `ring.keyring`.  Throws Error on IO failure.
void writeCorpus(const BuiltCorpus& corpus, const std::string& dir);

/// Scans `dir` recursively for design artifacts (kind-sniffed, hidden
/// files and `.locwm-cache/` skipped) and pairs each with the schedule
/// artifact of the same stem in the same directory, if any.  Items are
/// sorted by path — the canonical corpus order sharding is defined over.
[[nodiscard]] std::vector<CorpusItem> loadCorpusFromDirectory(
    const std::string& dir);

/// Loads a corpus from an ndjson manifest: one `{"design": PATH}` or
/// `{"design": PATH, "schedule": PATH}` object per line, paths relative to
/// the manifest's directory.  Items keep manifest order.  Throws Error on
/// malformed lines or unreadable files.
[[nodiscard]] std::vector<CorpusItem> loadCorpusFromManifest(
    const std::string& manifest_path);

}  // namespace locwm::scan
