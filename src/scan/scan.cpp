#include "scan/scan.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "cdfg/error.h"
#include "cdfg/io.h"
#include "core/pc.h"
#include "crypto/sha256.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "rt/rt.h"
#include "scan/fingerprint.h"
#include "sched/schedule_io.h"

namespace locwm::scan {

namespace fs = std::filesystem;

namespace {

/// Bumping this invalidates every cached fingerprint entry.
constexpr const char* kCacheFormat = "locwm-scanfp-entry v2";

std::string sha256Hex(const std::string& text) {
  return crypto::toHex(crypto::Sha256::hash(text));
}

/// Certificate-side screen data, computed once per ring entry and shared
/// by every design (the "certificate-side digest" of the pre-filter).
/// `root_kind` is set only for certificates that record their anchor's
/// canonical rank (sched/reg) — rooted tm certificates carry no root rank,
/// so they screen against every root regardless of kind.
struct CertScreen {
  KindFingerprint fp;
  /// Radius-1 fingerprint around the shape's anchor (certificates with a
  /// recorded root rank only) — the sharp per-root screen.
  std::optional<KindFingerprint> fp1;
  std::optional<cdfg::OpKind> root_kind;
  bool whole_design = false;
};

KindFingerprint anchorFingerprint(const cdfg::Cdfg& shape,
                                  std::uint32_t root_rank) {
  // The shape is itself a Cdfg (all real nodes), so the deriver's ball
  // semantics apply verbatim: shape-predecessors of the anchor are direct
  // real predecessors of any matching design root.
  const wm::LocalityDeriver deriver(shape);
  return fingerprintOfCounts(
      deriver.faninKindCounts(cdfg::NodeId(root_rank), 1));
}

std::vector<CertScreen> buildScreens(const KeyRing& ring) {
  std::vector<CertScreen> screens;
  screens.reserve(ring.size());
  for (const KeyRingEntry& entry : ring.entries()) {
    CertScreen sc;
    switch (entry.kind) {
      case CertKind::kSched:
        sc.fp = shapeFingerprint(entry.sched->shape);
        sc.fp1 = anchorFingerprint(entry.sched->shape, entry.sched->root_rank);
        sc.root_kind =
            entry.sched->shape.node(cdfg::NodeId(entry.sched->root_rank)).kind;
        break;
      case CertKind::kTm:
        sc.fp = shapeFingerprint(entry.tm->shape);
        sc.whole_design = entry.tm->whole_design;
        break;
      case CertKind::kReg:
        sc.fp = shapeFingerprint(entry.reg->shape);
        sc.fp1 = anchorFingerprint(entry.reg->shape, entry.reg->root_rank);
        sc.root_kind =
            entry.reg->shape.node(cdfg::NodeId(entry.reg->root_rank)).kind;
        break;
    }
    screens.push_back(sc);
  }
  return screens;
}

/// The fingerprint-cache entry wraps the DesignIndex with the design's
/// lenient-parse issue count, so a warm re-scan reports the same `issues`
/// field without re-parsing.
struct CachedIndex {
  std::size_t issues = 0;
  DesignIndex index;
};

std::optional<CachedIndex> loadCachedIndex(const std::string& file,
                                           std::uint32_t radius) {
  std::ifstream is(file, std::ios::binary);
  if (!is) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  std::istringstream ls(text);
  std::string header;
  if (!std::getline(ls, header) || header != kCacheFormat) {
    return std::nullopt;
  }
  std::string issue_line;
  if (!std::getline(ls, issue_line)) {
    return std::nullopt;
  }
  std::istringstream il(issue_line);
  std::string word;
  CachedIndex cached;
  std::string trailing;
  if (!(il >> word >> cached.issues) || word != "issues" || (il >> trailing)) {
    return std::nullopt;
  }
  std::ostringstream rest;
  rest << ls.rdbuf();
  std::optional<DesignIndex> index = parseIndex(rest.str());
  if (!index.has_value() || index->radius != radius) {
    return std::nullopt;
  }
  cached.index = std::move(*index);
  return cached;
}

bool storeCachedIndex(const std::string& file, const CachedIndex& cached) {
  // Temp-file + rename, as in check/project.cpp: concurrent runs race
  // benignly (both write the same deterministic bytes).
  const std::string tmp = file + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      return false;
    }
    os << kCacheFormat << '\n'
       << "issues " << cached.issues << '\n'
       << indexToString(cached.index);
    if (!os) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, file, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

const char* cacheStateName(int state) {
  switch (state) {
    case 1:
      return "cold";
    case 2:
      return "warm";
    default:
      return "off";
  }
}

/// Per-item result slot, folded back serially in item order.
struct Slot {
  std::vector<std::string> rows;
  std::size_t pairs = 0;
  std::size_t pruned = 0;
  std::size_t survivors = 0;
  std::size_t candidates = 0;
  std::size_t matches = 0;
  bool parse_failure = false;
  int cache_state = 0;  // 0 off, 1 cold, 2 warm
  bool scanned = false;
};

std::string matchRow(const CorpusItem& item, const KeyRingEntry& entry,
                     bool found, const char* level, std::int64_t root,
                     std::size_t satisfied, std::size_t total,
                     std::size_t shape_matches) {
  std::string row = "{\"cert\":" + obs::jsonString(entry.cert_path) +
                    ",\"design\":" + obs::jsonString(item.path) +
                    ",\"found\":" + (found ? "true" : "false") +
                    ",\"identity\":" + obs::jsonString(entry.signature.identity) +
                    ",\"kind\":\"" + certKindName(entry.kind) +
                    "\",\"level\":\"" + level +
                    "\",\"root\":" + std::to_string(root) +
                    ",\"satisfied\":" + std::to_string(satisfied) +
                    ",\"shape_matches\":" + std::to_string(shape_matches) +
                    ",\"total\":" + std::to_string(total) + ",\"type\":\"match\"}";
  return row;
}

void scanOne(const CorpusItem& item, std::size_t index, const KeyRing& ring,
             const std::vector<CertScreen>& screens, std::uint32_t radius,
             const ScanOptions& options, Slot& s) {
  LOCWM_OBS_LATENCY("scan.design.latency_ns");
  s.scanned = true;

  // Fingerprint cache probe — keyed by everything the entry depends on.
  std::string cache_file;
  std::optional<CachedIndex> cached;
  if (options.prefilter && !options.cache_dir.empty()) {
    const std::string key =
        sha256Hex(std::string(kCacheFormat) + "\n" + std::to_string(radius) +
                  "\n" + item.path + "\n" + sha256Hex(item.design_text));
    cache_file = (fs::path(options.cache_dir) / ("scanfp-" + key.substr(0, 32)))
                     .string();
    cached = loadCachedIndex(cache_file, radius);
  }

  std::optional<cdfg::Cdfg> parsed;
  std::optional<wm::LocalityDeriver> deriver;
  std::vector<cdfg::ParseIssue> issues;
  std::string parse_error;
  const auto ensureLowered = [&]() -> bool {
    if (deriver.has_value()) {
      return true;
    }
    if (!parse_error.empty()) {
      return false;
    }
    try {
      parsed = cdfg::parseString(item.design_text, issues, item.path);
    } catch (const Error& e) {
      parse_error = e.what();
      return false;
    }
    deriver.emplace(*parsed);
    return true;
  };
  const auto emitErrorRow = [&]() {
    s.parse_failure = true;
    s.rows.push_back("{\"design\":" + obs::jsonString(item.path) +
                     ",\"error\":" + obs::jsonString(parse_error) +
                     ",\"index\":" + std::to_string(index) +
                     ",\"type\":\"design\"}");
  };

  std::optional<DesignIndex> fp_index;
  std::size_t issue_count = 0;
  if (options.prefilter) {
    if (cached.has_value()) {
      s.cache_state = 2;
      issue_count = cached->issues;
      fp_index = std::move(cached->index);
    } else {
      if (!ensureLowered()) {
        emitErrorRow();
        return;
      }
      fp_index = buildDesignIndex(*deriver, radius);
      issue_count = issues.size();
      if (!cache_file.empty()) {
        s.cache_state = 1;
        storeCachedIndex(cache_file, CachedIndex{issue_count, *fp_index});
      }
    }
  } else {
    if (!ensureLowered()) {
      emitErrorRow();
      return;
    }
    issue_count = issues.size();
  }

  // Lazy per-design state shared by replay: the schedule (parsed at most
  // once) and, with the pre-filter off, the full candidate-root list.
  std::optional<sched::Schedule> schedule;
  bool schedule_tried = false;
  const auto ensureSchedule = [&]() -> const sched::Schedule* {
    if (!schedule_tried) {
      schedule_tried = true;
      if (!item.schedule_text.empty() && parsed.has_value()) {
        try {
          std::istringstream is(item.schedule_text);
          std::vector<sched::ScheduleParseIssue> sched_issues;
          schedule = sched::parseSchedule(is, parsed->nodeCount(), sched_issues,
                                          item.schedule_path);
        } catch (const Error&) {
          schedule.reset();  // fall back to shape-level evidence
        }
      }
    }
    return schedule.has_value() ? &*schedule : nullptr;
  };
  std::optional<std::vector<cdfg::NodeId>> all_roots;
  const auto allRoots = [&]() -> const std::vector<cdfg::NodeId>& {
    if (!all_roots.has_value()) {
      all_roots = deriver->candidateRoots();
    }
    return *all_roots;
  };

  std::vector<std::string> match_rows;
  std::vector<wm::WatermarkCertificate> pc_certs;
  for (std::size_t j = 0; j < ring.size(); ++j) {
    const KeyRingEntry& entry = ring.entries()[j];
    const CertScreen& sc = screens[j];
    ++s.pairs;

    // Screen: O(1) on the design-level aggregate, then per-root subset
    // tests to collect the candidate roots exact replay may visit.
    std::vector<cdfg::NodeId> candidates;
    if (options.prefilter) {
      bool survives = false;
      if (sc.whole_design) {
        survives = fp_index->design_fp.covers(sc.fp);
      } else {
        // Design-level screen first: the per-kind union for anchored
        // certificates; the whole-design fingerprint (a superset of every
        // fanin ball) for unanchored ones.
        const bool design_level =
            sc.root_kind.has_value()
                ? fp_index
                      ->kind_union[static_cast<std::size_t>(*sc.root_kind)]
                      .covers(sc.fp)
                : fp_index->design_fp.covers(sc.fp);
        if (design_level) {
          for (std::size_t k = 0; k < fp_index->roots.size(); ++k) {
            if (sc.root_kind.has_value() &&
                fp_index->root_kinds[k] !=
                    static_cast<std::uint8_t>(*sc.root_kind)) {
              continue;
            }
            if (fp_index->root_fps[k].covers(sc.fp) &&
                (!sc.fp1.has_value() ||
                 fp_index->root_fps1[k].covers(*sc.fp1))) {
              candidates.push_back(fp_index->roots[k]);
            }
          }
          survives = !candidates.empty();
        }
      }
      if (!survives) {
        ++s.pruned;
        continue;
      }
    }
    ++s.survivors;
    if (!ensureLowered()) {
      emitErrorRow();
      return;
    }
    if (!options.prefilter && !sc.whole_design) {
      candidates = allRoots();
    }
    s.candidates += sc.whole_design ? 1 : candidates.size();

    // Exact replay at the surviving roots.
    switch (entry.kind) {
      case CertKind::kSched: {
        const wm::WatermarkCertificate& cert = *entry.sched;
        const wm::SchedDetector det(entry.signature, *deriver, cert,
                                    candidates);
        if (det.shapeMatches() == 0) {
          break;
        }
        ++s.matches;
        if (const sched::Schedule* sch = ensureSchedule()) {
          const wm::SchedDetectResult r = det.check(*sch);
          match_rows.push_back(matchRow(item, entry, r.found, "schedule",
                                        r.root.value(), r.satisfied, r.total,
                                        r.shape_matches));
          if (r.found) {
            pc_certs.push_back(cert);
          }
        } else {
          match_rows.push_back(matchRow(item, entry, true, "shape",
                                        det.matches().front().root.value(), 0,
                                        0, det.shapeMatches()));
        }
        break;
      }
      case CertKind::kTm: {
        const wm::TmCertificate& cert = *entry.tm;
        if (cert.whole_design) {
          const std::optional<wm::Locality> loc =
              deriver->wholeDesign(cert.locality_params.min_size);
          if (loc.has_value() && wm::shapeEquals(loc->shape, cert.shape)) {
            ++s.matches;
            match_rows.push_back(
                matchRow(item, entry, true, "shape", -1, 0, 0, 1));
          }
          break;
        }
        const std::vector<wm::ShapeHit> hits = wm::scanShapeMatches(
            *deriver, entry.signature, cert.context, cert.locality_params,
            cert.shape, sc.root_kind, candidates);
        if (!hits.empty()) {
          ++s.matches;
          match_rows.push_back(matchRow(item, entry, true, "shape",
                                        hits.front().root.value(), 0, 0,
                                        hits.size()));
        }
        break;
      }
      case CertKind::kReg: {
        const wm::RegCertificate& cert = *entry.reg;
        const std::vector<wm::ShapeHit> hits = wm::scanShapeMatches(
            *deriver, entry.signature, cert.context, cert.locality_params,
            cert.shape, sc.root_kind, candidates);
        if (!hits.empty()) {
          ++s.matches;
          match_rows.push_back(matchRow(item, entry, true, "shape",
                                        hits.front().root.value(), 0, 0,
                                        hits.size()));
        }
        break;
      }
    }
  }

  // Aggregate authorship proof over the fully-matched scheduling
  // certificates (deadline slack 1, budgeted — see ScanOptions).
  std::string pc = "null";
  if (!pc_certs.empty()) {
    const wm::AggregatePc agg = wm::aggregateSchedulingPc(
        pc_certs, /*deadline_slack=*/1, options.pc_max_steps);
    if (agg.failed < pc_certs.size()) {
      pc = obs::jsonNumber(agg.combined.log10_pc);
    }
  }

  s.rows.push_back(
      "{\"cache\":\"" + std::string(cacheStateName(s.cache_state)) +
      "\",\"candidates\":" + std::to_string(s.candidates) +
      ",\"certs\":" + std::to_string(ring.size()) +
      ",\"design\":" + obs::jsonString(item.path) +
      ",\"index\":" + std::to_string(index) +
      ",\"issues\":" + std::to_string(issue_count) +
      ",\"matches\":" + std::to_string(s.matches) + ",\"pc_log10\":" + pc +
      ",\"pruned\":" + std::to_string(s.pruned) +
      ",\"survivors\":" + std::to_string(s.survivors) + ",\"type\":\"design\"}");
  for (std::string& row : match_rows) {
    s.rows.push_back(std::move(row));
  }
}

}  // namespace

ScanResult scanCorpus(const std::vector<CorpusItem>& items,
                      const KeyRing& ring, const ScanOptions& options) {
  LOCWM_OBS_SPAN("scan.corpus");
  const std::uint32_t shard_count = std::max<std::uint32_t>(1, options.shard_count);
  detail::check<Error>(options.shard_index < shard_count,
                       "scan: shard index out of range");
  // One design-side radius, sound for every certificate in the ring.
  const std::uint32_t radius = std::max<std::uint32_t>(1, ring.maxRadius());
  const std::vector<CertScreen> screens = buildScreens(ring);
  if (options.prefilter && !options.cache_dir.empty()) {
    fs::create_directories(options.cache_dir);
  }

  std::vector<Slot> slots(items.size());
  rt::parallel_for(0, items.size(), /*grain=*/1, [&](std::size_t i) {
    if (i % shard_count != options.shard_index) {
      return;
    }
    scanOne(items[i], i, ring, screens, radius, options, slots[i]);
  });

  // Serial fold in item order: byte-identical rows and stats at any
  // thread count.
  ScanResult out;
  for (Slot& s : slots) {
    if (!s.scanned) {
      continue;
    }
    ++out.stats.designs;
    out.stats.pairs += s.pairs;
    out.stats.pruned_pairs += s.pruned;
    out.stats.survivor_pairs += s.survivors;
    out.stats.candidate_roots += s.candidates;
    out.stats.match_pairs += s.matches;
    out.stats.parse_failures += s.parse_failure ? 1 : 0;
    out.stats.cache_cold += s.cache_state == 1 ? 1 : 0;
    out.stats.cache_warm += s.cache_state == 2 ? 1 : 0;
    for (std::string& row : s.rows) {
      out.rows.push_back(std::move(row));
    }
  }
  LOCWM_OBS_COUNT("scan.designs", out.stats.designs);
  LOCWM_OBS_COUNT("scan.pairs", out.stats.pairs);
  LOCWM_OBS_COUNT("scan.prefilter.pruned", out.stats.pruned_pairs);
  LOCWM_OBS_COUNT("scan.prefilter.survivors", out.stats.survivor_pairs);
  LOCWM_OBS_COUNT("scan.prefilter.candidate_roots", out.stats.candidate_roots);
  LOCWM_OBS_COUNT("scan.matches", out.stats.match_pairs);
  LOCWM_OBS_COUNT("scan.parse_failures", out.stats.parse_failures);
  LOCWM_OBS_COUNT("scan.cache.cold", out.stats.cache_cold);
  LOCWM_OBS_COUNT("scan.cache.warm", out.stats.cache_warm);
  return out;
}

}  // namespace locwm::scan
