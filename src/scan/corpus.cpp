#include "scan/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cdfg/error.h"
#include "cdfg/io.h"
#include "cdfg/prng.h"
#include "cdfg/random_dfg.h"
#include "check/workspace.h"
#include "core/certificate_io.h"
#include "core/sched_wm.h"
#include "sched/list_scheduler.h"
#include "sched/schedule_io.h"
#include "sched/timeframes.h"

namespace locwm::scan {

namespace fs = std::filesystem;

namespace {

std::string itemName(const char* prefix, std::size_t i, const char* ext) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%04zu%s", prefix, i, ext);
  return buf;
}

std::string readFileOrThrow(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  detail::check<Error>(static_cast<bool>(is),
                       path.string() + ": cannot open file");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

void writeFileOrThrow(const fs::path& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << text;
  detail::check<Error>(static_cast<bool>(os),
                       path.string() + ": cannot write file");
}

/// Extracts the string value of `key` from a flat one-line JSON object
/// ({"design": "a.cdfg", ...}).  Handles \" and \\ escapes; returns
/// nullopt when the key is absent.
std::optional<std::string> jsonField(const std::string& line,
                                     const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  pos += needle.size();
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == ':' || line[pos] == '\t')) {
    ++pos;
  }
  if (pos >= line.size() || line[pos] != '"') {
    return std::nullopt;
  }
  ++pos;
  std::string value;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) {
      value.push_back(line[pos + 1]);
      pos += 2;
    } else {
      value.push_back(line[pos]);
      ++pos;
    }
  }
  if (pos >= line.size()) {
    return std::nullopt;  // unterminated string
  }
  return value;
}

}  // namespace

BuiltCorpus buildRandomCorpus(const CorpusSpec& spec, std::uint64_t seed) {
  detail::check<Error>(spec.ops_min >= 1 && spec.ops_min <= spec.ops_max,
                       "corpus spec: need 1 <= ops_min <= ops_max");
  BuiltCorpus out;
  const std::size_t span = spec.ops_max - spec.ops_min + 1;
  std::vector<cdfg::Cdfg> graphs;
  graphs.reserve(spec.designs);
  for (std::size_t i = 0; i < spec.designs; ++i) {
    const std::uint64_t si = cdfg::substreamSeed(seed, i);
    cdfg::RandomDfgOptions options;
    options.operations = spec.ops_min + si % span;
    options.inputs = spec.inputs;
    options.width = spec.width;
    graphs.push_back(cdfg::randomDfg(options, si));
  }

  // Embed the ring: entry j lands in design floor(j*designs/ring), or the
  // next design that accepts it.  Context index j keeps every entry's
  // bitstream independent even when two entries share a design.
  for (std::size_t j = 0; j < spec.ring; ++j) {
    detail::check<Error>(spec.designs > 0,
                         "corpus spec: ring entries need designs");
    crypto::AuthorSignature signature;
    signature.identity = spec.identity;
    signature.nonce = "ring-" + std::to_string(j);
    const wm::SchedulingWatermarker marker(signature);
    const std::size_t target = j * spec.designs / spec.ring;
    bool planted = false;
    for (std::size_t attempt = 0; attempt < spec.designs && !planted;
         ++attempt) {
      const std::size_t d = (target + attempt) % spec.designs;
      cdfg::Cdfg& g = graphs[d];
      wm::SchedWmParams params;
      params.locality.min_size = 4;
      params.min_eligible = 2;
      const sched::TimeFrames tf(g, params.latency);
      params.deadline = tf.criticalPathSteps() + 3;
      const std::optional<wm::SchedEmbedResult> r =
          marker.embed(g, params, /*index=*/j);
      if (!r.has_value()) {
        continue;
      }
      out.ring.add(signature, "certs/" + itemName("c", j, ".cert"),
                   r->certificate);
      out.cert_texts.push_back(wm::certificateToString(r->certificate));
      out.planted.emplace_back(d, j);
      planted = true;
    }
    detail::check<Error>(planted, "corpus fixture: ring entry " +
                                      std::to_string(j) +
                                      " embeds in no design");
  }

  out.items.reserve(spec.designs);
  for (std::size_t i = 0; i < spec.designs; ++i) {
    CorpusItem item;
    item.path = itemName("d", i, ".cdfg");
    // Publish the design with its temporal edges stripped (Fig. 1): the
    // watermark travels only in the schedule order.
    const cdfg::Cdfg published = graphs[i].stripTemporalEdges();
    item.design_text = cdfg::printToString(published);
    if (spec.schedules) {
      // Schedule the *marked* graph so every embedded constraint holds.
      const sched::Schedule s = sched::listSchedule(graphs[i]);
      item.schedule_path = itemName("d", i, ".sched");
      item.schedule_text = sched::scheduleToString(published, s);
    }
    out.items.push_back(std::move(item));
  }
  return out;
}

void writeCorpus(const BuiltCorpus& corpus, const std::string& dir) {
  const fs::path root(dir);
  fs::create_directories(root);
  for (const CorpusItem& item : corpus.items) {
    writeFileOrThrow(root / item.path, item.design_text);
    if (!item.schedule_path.empty()) {
      writeFileOrThrow(root / item.schedule_path, item.schedule_text);
    }
  }
  if (!corpus.ring.entries().empty()) {
    fs::create_directories(root / "certs");
    for (std::size_t j = 0; j < corpus.ring.entries().size(); ++j) {
      writeFileOrThrow(root / corpus.ring.entries()[j].cert_path,
                       corpus.cert_texts[j]);
    }
    writeFileOrThrow(root / "ring.keyring", corpus.ring.toText());
  }
}

std::vector<CorpusItem> loadCorpusFromDirectory(const std::string& dir) {
  const fs::path root(dir);
  detail::check<Error>(fs::is_directory(root),
                       dir + ": not a directory");
  struct Found {
    std::string rel;
    std::string text;
  };
  std::vector<Found> designs;
  // stem (parent + filename sans extension) -> schedule
  std::vector<std::pair<std::string, Found>> schedules;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (!name.empty() && name.front() == '.') {
      if (it->is_directory()) {
        it.disable_recursion_pending();  // .locwm-cache and friends
      }
      continue;
    }
    if (!it->is_regular_file()) {
      continue;
    }
    const std::string text = readFileOrThrow(p);
    const check::SniffResult sniff = check::sniffArtifact(text);
    const std::string rel = fs::relative(p, root).string();
    if (sniff.kind == check::ArtifactKind::kDesign) {
      designs.push_back({rel, text});
    } else if (sniff.kind == check::ArtifactKind::kSchedule) {
      const std::string stem =
          (fs::path(rel).parent_path() / fs::path(rel).stem()).string();
      schedules.emplace_back(stem, Found{rel, text});
    }
  }
  std::sort(designs.begin(), designs.end(),
            [](const Found& a, const Found& b) { return a.rel < b.rel; });
  std::sort(schedules.begin(), schedules.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<CorpusItem> items;
  items.reserve(designs.size());
  for (Found& d : designs) {
    CorpusItem item;
    const std::string stem =
        (fs::path(d.rel).parent_path() / fs::path(d.rel).stem()).string();
    const auto it = std::lower_bound(
        schedules.begin(), schedules.end(), stem,
        [](const auto& a, const std::string& key) { return a.first < key; });
    if (it != schedules.end() && it->first == stem) {
      item.schedule_path = it->second.rel;
      item.schedule_text = it->second.text;
    }
    item.path = std::move(d.rel);
    item.design_text = std::move(d.text);
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<CorpusItem> loadCorpusFromManifest(
    const std::string& manifest_path) {
  std::ifstream is(manifest_path);
  detail::check<Error>(static_cast<bool>(is),
                       manifest_path + ": cannot open manifest");
  const fs::path base = fs::path(manifest_path).parent_path();
  std::vector<CorpusItem> items;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    const std::optional<std::string> design = jsonField(line, "design");
    detail::check<ParseError>(
        design.has_value(),
        manifest_path + ": line " + std::to_string(lineno) +
            ": manifest row lacks a \"design\" field");
    CorpusItem item;
    item.path = *design;
    item.design_text = readFileOrThrow(base / *design);
    if (const std::optional<std::string> sched =
            jsonField(line, "schedule")) {
      item.schedule_path = *sched;
      item.schedule_text = readFileOrThrow(base / *sched);
    }
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace locwm::scan
