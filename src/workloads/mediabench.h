// MediaBench-profile synthetic workloads — the Table I benchmark set.
//
// The paper watermarks the schedules of MediaBench applications [20]
// compiled with IMPACT for a 4-issue VLIW [21][22].  Neither the compiled
// IRs nor the toolchain are available, so each application is modelled as a
// synthetic data-flow region with the application's published character:
// operation count and mix (arithmetic vs memory vs branch fraction) drawn
// from the MediaBench characterization literature.  The watermark code path
// exercised — temporal-edge augmentation, re-scheduling, cycle-count
// overhead — is identical to the paper's; absolute cycle counts are not
// comparable (and the paper reports only percentages).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdfg/graph.h"

namespace locwm::workloads {

/// Profile of one MediaBench application's scheduled region.
struct MediaBenchProfile {
  std::string name;
  std::size_t operations = 0;
  /// Fractions of memory and branch operations (rest is arithmetic/logic).
  double mem_fraction = 0.2;
  double branch_fraction = 0.08;
  /// Relative multiply weight within the arithmetic mix.
  double mul_weight = 1.0;
  /// Parallelism knob: approximate operations per dependence layer.
  std::size_t width = 16;
  /// Memory working set of the region, bytes — drives the 8-KB-cache
  /// stall estimate of the Table I platform (vliw/cache.h).
  std::uint64_t working_set_bytes = 16 * 1024;
  std::uint64_t seed = 0;
};

/// The eleven Table I applications with representative kernel sizes.
[[nodiscard]] std::vector<MediaBenchProfile> mediaBenchProfiles();

/// Materializes the profile into a CDFG (deterministic in profile.seed).
[[nodiscard]] cdfg::Cdfg buildMediaBench(const MediaBenchProfile& profile);

}  // namespace locwm::workloads
