// Reconstructed HYPER-era DSP designs — the Table II benchmark suite.
//
// The paper evaluates template-matching watermarks "on a set of small
// real-life designs [9]" synthesized with HYPER.  HYPER and its design
// suite are not publicly available, so this module reconstructs the
// classic behavioral-synthesis benchmarks of that era from their public
// structural definitions: wave-digital/lattice/FIR/DCT-style dataflow.
// Each builder is parameterized and produces a deterministic CDFG.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cdfg/graph.h"

namespace locwm::workloads {

/// N-tap FIR filter: N constant multiplications + (N−1)-addition balanced
/// reduction tree.
[[nodiscard]] cdfg::Cdfg fir(std::size_t taps);

/// Order-`stages` normalized lattice filter (AR-style benchmark):
/// per stage two constant multiplications and two additions on the
/// forward/backward recurrences.
[[nodiscard]] cdfg::Cdfg lattice(std::size_t stages);

/// Wave-digital ladder filter built from `adaptors` two-port series
/// adaptors (1 constant multiplication + 3 additions each) — the elliptic
/// wave filter family; adaptors=8 approximates the canonical 34-op EWF.
[[nodiscard]] cdfg::Cdfg waveFilter(std::size_t adaptors);

/// `sections` cascaded direct-form-II biquad sections (4 constant
/// multiplications + 4 additions each).
[[nodiscard]] cdfg::Cdfg iirCascade(std::size_t sections);

/// 8-point DCT-II butterfly network: first-stage add/sub butterflies
/// followed by rotation stages (constant multiplications + combines).
[[nodiscard]] cdfg::Cdfg dct8();

/// Two-band analysis wavelet stage: a pair of `taps`-tap FIR filters
/// (low-pass / high-pass) over a shared input window.
[[nodiscard]] cdfg::Cdfg wavelet(std::size_t taps);

/// Second-order Volterra filter section: linear taps plus quadratic
/// cross-product terms, reduced by an adder tree.
[[nodiscard]] cdfg::Cdfg volterra(std::size_t taps);

/// 2-state state-space controller: u = C·x + D·e, x' = A·x + B·e.
[[nodiscard]] cdfg::Cdfg controller2();

/// One named Table II design.
struct HyperDesign {
  std::string name;
  std::string description;
  cdfg::Cdfg graph;
};

/// The full Table II suite, in row order.
[[nodiscard]] std::vector<HyperDesign> hyperSuite();

}  // namespace locwm::workloads
