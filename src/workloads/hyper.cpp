#include "workloads/hyper.h"

#include <functional>

#include "cdfg/error.h"
#include "workloads/iir4.h"

namespace locwm::workloads {

using cdfg::Cdfg;
using cdfg::EdgeKind;
using cdfg::NodeId;
using cdfg::OpKind;

namespace {

/// Small builder helpers shared by all designs.
struct Builder {
  Cdfg g;
  std::size_t counter = 0;

  NodeId input(const std::string& name) {
    return g.addNode(OpKind::kInput, name);
  }
  NodeId output(NodeId from, const std::string& name) {
    const NodeId v = g.addNode(OpKind::kOutput, name);
    g.addEdge(from, v, EdgeKind::kData);
    return v;
  }
  NodeId cmul(NodeId in) {
    const NodeId v = g.addNode(OpKind::kConstMul, "c" + next());
    g.addEdge(in, v, EdgeKind::kData);
    return v;
  }
  NodeId binary(OpKind kind, NodeId a, NodeId b, const char* prefix) {
    const NodeId v = g.addNode(kind, prefix + next());
    g.addEdge(a, v, EdgeKind::kData);
    g.addEdge(b, v, EdgeKind::kData);
    return v;
  }
  NodeId add(NodeId a, NodeId b) { return binary(OpKind::kAdd, a, b, "a"); }
  NodeId sub(NodeId a, NodeId b) { return binary(OpKind::kSub, a, b, "s"); }

  /// Balanced reduction of `terms` by addition.
  NodeId reduce(std::vector<NodeId> terms) {
    detail::check(!terms.empty(), "reduce: no terms");
    while (terms.size() > 1) {
      std::vector<NodeId> next_level;
      for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
        next_level.push_back(add(terms[i], terms[i + 1]));
      }
      if (terms.size() % 2 == 1) {
        next_level.push_back(terms.back());
      }
      terms = std::move(next_level);
    }
    return terms.front();
  }

 private:
  std::string next() { return std::to_string(counter++); }
};

}  // namespace

Cdfg fir(std::size_t taps) {
  detail::check(taps >= 2, "fir: need at least 2 taps");
  Builder b;
  std::vector<NodeId> products;
  for (std::size_t i = 0; i < taps; ++i) {
    products.push_back(b.cmul(b.input("x" + std::to_string(i))));
  }
  b.output(b.reduce(products), "y");
  b.g.checkAcyclic();
  return std::move(b.g);
}

Cdfg lattice(std::size_t stages) {
  detail::check(stages >= 1, "lattice: need at least 1 stage");
  Builder b;
  NodeId f = b.input("x");
  std::vector<NodeId> backs;
  for (std::size_t i = 0; i < stages; ++i) {
    // Forward/backward recurrence of one normalized lattice stage:
    //   f_i = f_{i-1} + k_i·b_{i-1};  b_i = k_i·f_{i-1} + b_{i-1}.
    const NodeId bprev = b.input("b" + std::to_string(i));
    const NodeId kf = b.cmul(bprev);
    const NodeId kb = b.cmul(f);
    const NodeId fnew = b.add(f, kf);
    const NodeId bnew = b.add(kb, bprev);
    backs.push_back(bnew);
    f = fnew;
  }
  b.output(f, "y");
  for (std::size_t i = 0; i < backs.size(); ++i) {
    b.output(backs[i], "bo" + std::to_string(i));
  }
  b.g.checkAcyclic();
  return std::move(b.g);
}

Cdfg waveFilter(std::size_t adaptors) {
  detail::check(adaptors >= 1, "waveFilter: need at least 1 adaptor");
  Builder b;
  NodeId forward = b.input("x");
  std::vector<NodeId> reflections;
  for (std::size_t i = 0; i < adaptors; ++i) {
    // Two-port series adaptor: d = a1 - a2; m = γ·d;
    // b1 = a1 - m (wave back to port 1); b2 = a2 + m (wave on to port 2).
    const NodeId state = b.input("st" + std::to_string(i));
    const NodeId d = b.sub(forward, state);
    const NodeId m = b.cmul(d);
    const NodeId back = b.sub(forward, m);
    const NodeId on = b.add(state, m);
    reflections.push_back(back);
    forward = on;
  }
  b.output(forward, "y");
  // The filter output taps the reflected waves through a summation tree —
  // this is also what gives the design schedulable parallelism (the
  // reflections are mutually independent).
  b.output(b.reduce(reflections), "yr");
  b.g.checkAcyclic();
  return std::move(b.g);
}

Cdfg iirCascade(std::size_t sections) {
  detail::check(sections >= 1, "iirCascade: need at least 1 section");
  Builder b;
  NodeId x = b.input("x");
  for (std::size_t i = 0; i < sections; ++i) {
    const std::string tag = std::to_string(i);
    // Direct form II: w = x + a1·w1 + a2·w2;  y = b0·w + b1·w1.
    const NodeId w1 = b.input("w1_" + tag);
    const NodeId w2 = b.input("w2_" + tag);
    const NodeId fb = b.add(b.cmul(w1), b.cmul(w2));
    const NodeId w = b.add(x, fb);
    const NodeId y = b.add(b.cmul(w), b.cmul(w1));
    b.output(w, "wn_" + tag);  // state update
    x = y;
  }
  b.output(x, "y");
  b.g.checkAcyclic();
  return std::move(b.g);
}

Cdfg dct8() {
  Builder b;
  std::vector<NodeId> x;
  for (std::size_t i = 0; i < 8; ++i) {
    x.push_back(b.input("x" + std::to_string(i)));
  }
  // Stage 1 butterflies: s_i = x_i + x_{7-i}, d_i = x_i - x_{7-i}.
  std::vector<NodeId> s, d;
  for (std::size_t i = 0; i < 4; ++i) {
    s.push_back(b.add(x[i], x[7 - i]));
    d.push_back(b.sub(x[i], x[7 - i]));
  }
  // Even part: 4-point DCT of s.
  const NodeId e0 = b.add(s[0], s[3]);
  const NodeId e1 = b.add(s[1], s[2]);
  const NodeId e2 = b.sub(s[0], s[3]);
  const NodeId e3 = b.sub(s[1], s[2]);
  const NodeId y0 = b.add(e0, e1);
  const NodeId y4 = b.sub(e0, e1);
  const NodeId y2 = b.add(b.cmul(e2), b.cmul(e3));
  const NodeId y6 = b.sub(b.cmul(e2), b.cmul(e3));
  // Odd part: rotations of d.
  const NodeId y1 = b.add(b.add(b.cmul(d[0]), b.cmul(d[1])),
                          b.add(b.cmul(d[2]), b.cmul(d[3])));
  const NodeId y3 = b.sub(b.add(b.cmul(d[0]), b.cmul(d[2])),
                          b.cmul(d[3]));
  const NodeId y5 = b.add(b.sub(b.cmul(d[1]), b.cmul(d[3])),
                          b.cmul(d[2]));
  const NodeId y7 = b.sub(b.sub(b.cmul(d[0]), b.cmul(d[1])),
                          b.cmul(d[2]));
  const NodeId outs[8] = {y0, y1, y2, y3, y4, y5, y6, y7};
  for (std::size_t i = 0; i < 8; ++i) {
    b.output(outs[i], "y" + std::to_string(i));
  }
  b.g.checkAcyclic();
  return std::move(b.g);
}

Cdfg wavelet(std::size_t taps) {
  detail::check(taps >= 2, "wavelet: need at least 2 taps");
  Builder b;
  std::vector<NodeId> window;
  for (std::size_t i = 0; i < taps; ++i) {
    window.push_back(b.input("x" + std::to_string(i)));
  }
  // Low-pass bank: additive reduction; high-pass bank: alternating-sign
  // (subtractive) combining — the QMF mirror relation, which also keeps
  // the two banks structurally distinguishable.
  std::vector<NodeId> lo;
  for (std::size_t i = 0; i < taps; ++i) {
    lo.push_back(b.cmul(window[i]));
  }
  b.output(b.reduce(lo), "lo");
  NodeId hi = b.cmul(window[0]);
  for (std::size_t i = 1; i < taps; ++i) {
    hi = b.sub(hi, b.cmul(window[i]));
  }
  b.output(hi, "hi");
  b.g.checkAcyclic();
  return std::move(b.g);
}

Cdfg volterra(std::size_t taps) {
  detail::check(taps >= 2, "volterra: need at least 2 taps");
  Builder b;
  std::vector<NodeId> x;
  for (std::size_t i = 0; i < taps; ++i) {
    x.push_back(b.input("x" + std::to_string(i)));
  }
  std::vector<NodeId> terms;
  // Linear kernel.
  for (std::size_t i = 0; i < taps; ++i) {
    terms.push_back(b.cmul(x[i]));
  }
  // Quadratic kernel: h2(i,j)·x_i·x_j for i <= j.
  for (std::size_t i = 0; i < taps; ++i) {
    for (std::size_t j = i; j < taps; ++j) {
      const NodeId prod = b.binary(OpKind::kMul, x[i], x[j], "m");
      terms.push_back(b.cmul(prod));
    }
  }
  b.output(b.reduce(terms), "y");
  b.g.checkAcyclic();
  return std::move(b.g);
}

Cdfg controller2() {
  Builder b;
  const NodeId x0 = b.input("x0");
  const NodeId x1 = b.input("x1");
  const NodeId e = b.input("e");
  // x' = A·x + B·e; the rows differ (B drives only the first state),
  // which is also what keeps the dataflow asymmetric and identifiable.
  const NodeId x0n =
      b.add(b.add(b.cmul(x0), b.cmul(x1)), b.cmul(e));
  const NodeId x1n = b.add(b.cmul(x0), b.cmul(x1));
  // u = C·x + e (direct feedthrough, D = 1).
  const NodeId u = b.add(b.add(b.cmul(x0), b.cmul(x1)), e);
  b.output(x0n, "x0n");
  b.output(x1n, "x1n");
  b.output(u, "u");
  b.g.checkAcyclic();
  return std::move(b.g);
}

std::vector<HyperDesign> hyperSuite() {
  std::vector<HyperDesign> suite;
  suite.push_back({"iir4", "4th-order parallel IIR (Fig. 3/4)",
                   iir4Parallel()});
  suite.push_back({"ewf", "5th-order elliptic wave filter (8 adaptors)",
                   waveFilter(8)});
  suite.push_back({"ar", "6-stage AR lattice filter", lattice(6)});
  suite.push_back({"fir11", "11-tap FIR filter", fir(11)});
  suite.push_back({"dct8", "8-point DCT-II butterfly network", dct8()});
  suite.push_back({"iirc4", "4th-order cascade IIR (2 biquads)",
                   iirCascade(2)});
  suite.push_back({"wave8", "8-tap two-band wavelet analysis stage",
                   wavelet(8)});
  suite.push_back({"volt4", "2nd-order Volterra filter, 4 taps",
                   volterra(4)});
  suite.push_back({"ctrl2", "2-state state-space controller", controller2()});
  return suite;
}

}  // namespace locwm::workloads
