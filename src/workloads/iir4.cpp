#include "workloads/iir4.h"

#include "cdfg/error.h"

namespace locwm::workloads {

using cdfg::Cdfg;
using cdfg::EdgeKind;
using cdfg::NodeId;
using cdfg::OpKind;

Cdfg iir4Parallel() {
  Cdfg g;
  // Primary inputs.
  const NodeId x = g.addNode(OpKind::kInput, "x");
  const NodeId x1 = g.addNode(OpKind::kInput, "x1");
  const NodeId s11 = g.addNode(OpKind::kInput, "s11");
  const NodeId s12 = g.addNode(OpKind::kInput, "s12");
  const NodeId s21 = g.addNode(OpKind::kInput, "s21");
  const NodeId s22 = g.addNode(OpKind::kInput, "s22");
  const NodeId p = g.addNode(OpKind::kInput, "p");

  auto cmul = [&](NodeId in, const char* name) {
    const NodeId v = g.addNode(OpKind::kConstMul, name);
    g.addEdge(in, v, EdgeKind::kData);
    return v;
  };
  auto add = [&](NodeId a, NodeId b, const char* name) {
    const NodeId v = g.addNode(OpKind::kAdd, name);
    g.addEdge(a, v, EdgeKind::kData);
    g.addEdge(b, v, EdgeKind::kData);
    return v;
  };

  // Section 1: feedforward taps C1, C2; feedback taps C3, C4.
  const NodeId c1 = cmul(x, "C1");
  const NodeId c2 = cmul(x1, "C2");
  const NodeId c3 = cmul(s11, "C3");
  const NodeId c4 = cmul(s12, "C4");
  const NodeId a1 = add(c1, c2, "A1");
  const NodeId a2 = add(c3, c4, "A2");
  const NodeId a3 = add(a1, a2, "A3");  // y1

  // Section 2: feedforward taps C5, C6; feedback taps C7, C8.
  const NodeId c5 = cmul(x, "C5");
  const NodeId c6 = cmul(x1, "C6");
  const NodeId c7 = cmul(s21, "C7");
  const NodeId c8 = cmul(s22, "C8");
  const NodeId a4 = add(c5, c6, "A4");
  const NodeId a5 = add(c7, c8, "A5");
  const NodeId a6 = add(a5, p, "A6");   // one input of A6 is a primary input
  const NodeId a7 = add(a4, a6, "A7");  // y2

  // Combine: state-update adder A8 (consumes C7's second fanout) and the
  // output adder A9 (two additions feeding it: A5 and A7).
  const NodeId a8 = add(a3, c7, "A8");
  const NodeId a9 = add(a5, a7, "A9");

  const NodeId y = g.addNode(OpKind::kOutput, "y");
  g.addEdge(a9, y, EdgeKind::kData);
  const NodeId yb = g.addNode(OpKind::kOutput, "yb");
  g.addEdge(a8, yb, EdgeKind::kData);

  g.checkAcyclic();
  return g;
}

tm::TemplateLibrary fig4Library() {
  using tm::Template;
  tm::TemplateLibrary lib;
  lib.add(Template{"T1:add-add", {{OpKind::kAdd, {1}}, {OpKind::kAdd, {}}}});
  lib.add(Template{"T2:cmul-add",
                   {{OpKind::kAdd, {1}}, {OpKind::kConstMul, {}}}});
  return lib;
}

std::vector<std::pair<NodeId, NodeId>> fig3TemporalEdges(const Cdfg& iir4) {
  auto n = [&](const char* name) {
    const NodeId id = iir4.findByName(name);
    detail::check(id.isValid(), std::string("iir4 node missing: ") + name);
    return id;
  };
  return {
      {n("C1"), n("C3")}, {n("C2"), n("C4")}, {n("C7"), n("C8")},
      {n("C4"), n("C6")}, {n("A2"), n("A4")},
  };
}

}  // namespace locwm::workloads
