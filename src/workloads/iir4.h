// Fourth-order parallel IIR filter — the paper's motivational example
// (Figs. 3 and 4).
//
// The paper's figures are only partially legible in the available text, so
// this is a documented *reconstruction*: two parallel second-order sections
// (constant multiplications C1..C8, additions A1..A9) arranged to satisfy
// every structural fact the text states:
//
//   * the template-matching example isolates the two-adder pair (A5, A6),
//     and "one of the inputs to A6 is a primary input"            (§IV-B);
//   * the enforced matchings are {(A5,A6), (A9,A7), (A8,C7)}, so A7 feeds
//     A9 and C7 feeds A8;
//   * "operation A9 can be matched in five different ways" against the
//     two-template library {T1: add–add, T2: cmul–add}, which requires
//     A9's operands to be exactly two additions (A5 and A7);
//   * the scheduling example draws temporal edges from sources
//     {C1, C2, C4, C7, A2} — all of which must be real operations with
//     off-critical laxity.
//
// EXPERIMENTS.md records where our reconstruction's measured counts land
// relative to the paper's quoted 166/15 schedules and 6 coverings.
#pragma once

#include <utility>
#include <vector>

#include "cdfg/graph.h"
#include "tm/template.h"

namespace locwm::workloads {

/// Builds the reconstructed fourth-order parallel IIR CDFG.  Node labels
/// match the paper's figure (C1..C8, A1..A9); inputs are x, x1 (delayed
/// input), s11/s12/s21/s22 (section states), and p (the primary input
/// feeding A6).
[[nodiscard]] cdfg::Cdfg iir4Parallel();

/// The Fig. 4 template library: T1 = two chained additions,
/// T2 = constant-multiply feeding an addition.
[[nodiscard]] tm::TemplateLibrary fig4Library();

/// The Fig. 3 temporal-edge set, adapted to the reconstruction:
/// (C1→C3), (C2→C4), (C7→C8), (C4→C6), (A2→A4).  The paper's pairs
/// (C4→C8), (C7→C6), (A2→A3) are respectively infeasible under our
/// reconstruction's tight windows, re-targeted, or an existing data edge,
/// so the nearest feasible independent pairs stand in; see EXPERIMENTS.md.
[[nodiscard]] std::vector<std::pair<cdfg::NodeId, cdfg::NodeId>>
fig3TemporalEdges(const cdfg::Cdfg& iir4);

}  // namespace locwm::workloads
