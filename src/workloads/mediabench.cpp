#include "workloads/mediabench.h"

#include "cdfg/random_dfg.h"

namespace locwm::workloads {

std::vector<MediaBenchProfile> mediaBenchProfiles() {
  // Sizes are representative of the dominant scheduled regions (inner
  // kernels plus surrounding straight-line code), not whole programs; the
  // mixes follow the published MediaBench characterizations: media codecs
  // are arithmetic-heavy with ~20-30% memory and ~5-15% branch operations.
  // Working sets follow the published MediaBench characterizations:
  // codecs with small state (adpcm, g721, gsm) fit the 8-KB cache; image
  // and 3-D pipelines (jpeg, mesa, mpeg2, epic) stream well past it.
  std::vector<MediaBenchProfile> profiles = {
      {"adpcm", 296, 0.18, 0.14, 0.3, 8, 4u * 1024, 101},
      {"epic", 1132, 0.26, 0.08, 1.6, 16, 64u * 1024, 102},
      {"g721", 862, 0.22, 0.12, 0.8, 12, 6u * 1024, 103},
      {"ghostscript", 2216, 0.30, 0.12, 0.6, 20, 96u * 1024, 104},
      {"gsm", 1520, 0.24, 0.08, 1.4, 16, 8u * 1024, 105},
      {"jpeg", 3410, 0.26, 0.07, 1.8, 24, 48u * 1024, 106},
      {"mesa", 4820, 0.28, 0.06, 2.2, 28, 256u * 1024, 107},
      {"mpeg2", 2964, 0.27, 0.07, 1.9, 24, 128u * 1024, 108},
      {"pegwit", 1844, 0.22, 0.09, 1.2, 16, 24u * 1024, 109},
      {"pgp", 2534, 0.24, 0.10, 1.1, 20, 32u * 1024, 110},
      {"rasta", 1710, 0.25, 0.08, 1.7, 16, 40u * 1024, 111},
  };
  return profiles;
}

cdfg::Cdfg buildMediaBench(const MediaBenchProfile& profile) {
  cdfg::RandomDfgOptions o;
  o.operations = profile.operations;
  o.inputs = std::max<std::size_t>(4, profile.width / 2);
  o.width = profile.width;
  o.long_edge_prob = 0.3;
  // Arithmetic mix scaled so mem/branch land at the requested fractions.
  const double arith = 1.0 - profile.mem_fraction - profile.branch_fraction;
  o.w_add = arith * 4.0;
  o.w_sub = arith * 1.5;
  o.w_mul = arith * profile.mul_weight;
  o.w_shift = arith * 1.0;
  o.w_logic = arith * 1.5;
  o.w_cmp = arith * 0.8;
  const double arith_total =
      o.w_add + o.w_sub + o.w_mul + o.w_shift + o.w_logic + o.w_cmp;
  // Memory/branch weights relative to the arithmetic total.
  o.w_load = arith_total * profile.mem_fraction / arith * 0.7;
  o.w_store = arith_total * profile.mem_fraction / arith * 0.3;
  o.w_branch = arith_total * profile.branch_fraction / arith;
  o.output_fraction = 0.4;
  return cdfg::randomDfg(o, profile.seed);
}

}  // namespace locwm::workloads
