#include "rt/rt.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "obs/obs.h"

namespace locwm::rt {

namespace {

/// Set while the current thread executes a pool task (or drives run()),
/// so nested parallel regions degrade to inline serial execution.
thread_local bool t_in_parallel_region = false;

std::uint64_t monotonicNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::size_t kMaxLanes = 256;

std::size_t clampLanes(std::size_t n) noexcept {
  return std::clamp<std::size_t>(n, 1, kMaxLanes);
}

std::size_t envThreads() noexcept {
  const char* raw = std::getenv("LOCWM_THREADS");
  if (raw == nullptr || *raw == '\0') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long v = std::strtoul(raw, &end, 10);
  if (end == raw || v == 0) {
    return 0;  // unparsable or zero: fall through to hardware
  }
  return static_cast<std::size_t>(v);
}

/// Percent of wall time a lane spent executing chunks, out of the time it
/// was either executing or waiting.  0 when the lane never did either.
std::int64_t utilizationPct(std::uint64_t busy_ns,
                            std::uint64_t idle_ns) noexcept {
  const std::uint64_t total = busy_ns + idle_ns;
  if (total == 0) {
    return 0;
  }
  return static_cast<std::int64_t>((busy_ns * 100 + total / 2) / total);
}

/// Publishes one pool's scheduling state as obs gauges.  Gauges, not
/// counters: each publish overwrites the previous values with the pool's
/// cumulative state, so repeated publishes never double-count.
void publishStats(const std::vector<LaneStats>& per_lane,
                  std::size_t lanes) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge("rt.pool.lanes").set(static_cast<std::int64_t>(lanes));
  LaneStats total;
  for (std::size_t l = 0; l < per_lane.size(); ++l) {
    const LaneStats& s = per_lane[l];
    total.tasks += s.tasks;
    total.steals += s.steals;
    total.steal_fails += s.steal_fails;
    total.parks += s.parks;
    total.idle_ns += s.idle_ns;
    total.busy_ns += s.busy_ns;
    const std::string prefix = "rt.lane" + std::to_string(l);
    reg.gauge(prefix + ".tasks").set(static_cast<std::int64_t>(s.tasks));
    reg.gauge(prefix + ".steals").set(static_cast<std::int64_t>(s.steals));
    reg.gauge(prefix + ".steal_fails")
        .set(static_cast<std::int64_t>(s.steal_fails));
    reg.gauge(prefix + ".parks").set(static_cast<std::int64_t>(s.parks));
    reg.gauge(prefix + ".idle_ns").set(static_cast<std::int64_t>(s.idle_ns));
    reg.gauge(prefix + ".busy_ns").set(static_cast<std::int64_t>(s.busy_ns));
    reg.gauge(prefix + ".utilization_pct")
        .set(utilizationPct(s.busy_ns, s.idle_ns));
  }
  reg.gauge("rt.pool.parks").set(static_cast<std::int64_t>(total.parks));
  reg.gauge("rt.pool.steal_fails")
      .set(static_cast<std::int64_t>(total.steal_fails));
  reg.gauge("rt.pool.busy_ns").set(static_cast<std::int64_t>(total.busy_ns));
  reg.gauge("rt.pool.idle_ns").set(static_cast<std::int64_t>(total.idle_ns));
  reg.gauge("rt.pool.utilization_pct")
      .set(utilizationPct(total.busy_ns, total.idle_ns));
}

}  // namespace

bool inParallelRegion() noexcept { return t_in_parallel_region; }

std::size_t hardwareThreads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct Pool::Impl {
  /// One lane's claimable chunk range for the current region.  Owners
  /// fetch_add on their own `next`; thieves fetch_add on someone else's —
  /// claiming is the same operation either way, which keeps the deque
  /// logic trivial and TSan-clean.  Overshoot past `end` is benign.
  struct alignas(64) Block {
    std::atomic<std::uint64_t> next{0};
    std::uint64_t end = 0;
  };

  struct alignas(64) LaneCounters {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_fails{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> idle_ns{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  std::size_t lanes = 1;
  std::vector<std::thread> threads;
  std::vector<Block> blocks;
  std::vector<LaneCounters> counters;

  std::mutex mutex;
  std::condition_variable work_cv;  ///< workers wait here between regions
  std::condition_variable done_cv;  ///< run() waits here for quiescence
  std::uint64_t generation = 0;
  std::size_t busy_workers = 0;  ///< workers still inside the current region
  bool stop = false;
  const std::function<void(std::size_t, std::size_t)>* job = nullptr;
  std::size_t job_chunks = 0;

  std::atomic<bool> abort{false};
  std::exception_ptr first_error;  // guarded by mutex

  void workRegion(const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t lane) {
    const std::uint64_t busy_start = monotonicNs();
    workRegionInner(fn, lane);
    counters[lane].busy_ns.fetch_add(monotonicNs() - busy_start,
                                     std::memory_order_relaxed);
  }

  void workRegionInner(
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t lane) {
    LaneCounters& mine = counters[lane];
    // Own static block first, then drain the other lanes' leftovers.
    for (std::size_t offset = 0; offset < lanes; ++offset) {
      const std::size_t victim = (lane + offset) % lanes;
      Block& b = blocks[victim];
      bool claimed_any = false;
      for (;;) {
        if (abort.load(std::memory_order_relaxed)) {
          return;
        }
        const std::uint64_t c = b.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= b.end) {
          break;
        }
        claimed_any = true;
        try {
          fn(static_cast<std::size_t>(c), lane);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        mine.tasks.fetch_add(1, std::memory_order_relaxed);
        if (victim != lane) {
          mine.steals.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (offset > 0 && !claimed_any) {
        mine.steal_fails.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  void workerLoop(std::size_t lane) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        const std::uint64_t idle_start = monotonicNs();
        counters[lane].parks.fetch_add(1, std::memory_order_relaxed);
        work_cv.wait(lock, [&] { return stop || generation != seen; });
        counters[lane].idle_ns.fetch_add(monotonicNs() - idle_start,
                                         std::memory_order_relaxed);
        if (stop) {
          return;
        }
        seen = generation;
        fn = job;
      }
      if (fn != nullptr) {
        t_in_parallel_region = true;
        workRegion(*fn, lane);
        t_in_parallel_region = false;
      }
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (--busy_workers == 0) {
          done_cv.notify_one();
        }
      }
    }
  }
};

Pool::Pool(std::size_t lanes) : impl_(std::make_unique<Impl>()) {
  impl_->lanes = clampLanes(lanes);
  impl_->blocks = std::vector<Impl::Block>(impl_->lanes);
  impl_->counters = std::vector<Impl::LaneCounters>(impl_->lanes);
  impl_->threads.reserve(impl_->lanes - 1);
  for (std::size_t lane = 1; lane < impl_->lanes; ++lane) {
    impl_->threads.emplace_back([this, lane] { impl_->workerLoop(lane); });
  }
}

Pool::~Pool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads) {
    t.join();
  }
}

std::size_t Pool::lanes() const noexcept { return impl_->lanes; }

void Pool::run(std::size_t chunk_count,
               const std::function<void(std::size_t, std::size_t)>& fn) {
  if (chunk_count == 0) {
    return;
  }
  if (impl_->lanes == 1 || chunk_count == 1 || t_in_parallel_region) {
    // Inline serial execution: same chunks, same order, no pool traffic.
    for (std::size_t c = 0; c < chunk_count; ++c) {
      fn(c, 0);
    }
    return;
  }

  Impl& im = *impl_;
  const std::uint64_t tasks_before = totalStats().tasks;
  const std::uint64_t steals_before = totalStats().steals;
  {
    const std::lock_guard<std::mutex> lock(im.mutex);
    // Static contiguous blocks, one per lane, independent of which lanes
    // end up doing the work.
    const std::size_t per =
        (chunk_count + im.lanes - 1) / im.lanes;
    for (std::size_t l = 0; l < im.lanes; ++l) {
      const std::uint64_t lo =
          static_cast<std::uint64_t>(std::min(l * per, chunk_count));
      const std::uint64_t hi =
          static_cast<std::uint64_t>(std::min(lo + per, chunk_count));
      im.blocks[l].next.store(lo, std::memory_order_relaxed);
      im.blocks[l].end = hi;
    }
    im.job = &fn;
    im.job_chunks = chunk_count;
    im.abort.store(false, std::memory_order_relaxed);
    im.first_error = nullptr;
    im.busy_workers = im.threads.size();
    ++im.generation;
  }
  im.work_cv.notify_all();

  const std::uint64_t region_start = monotonicNs();
  t_in_parallel_region = true;
  im.workRegion(fn, /*lane=*/0);
  t_in_parallel_region = false;

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(im.mutex);
    // Lane 0's wait for quiescence is its idle time.
    const std::uint64_t wait_start = monotonicNs();
    im.done_cv.wait(lock, [&] { return im.busy_workers == 0; });
    im.counters[0].idle_ns.fetch_add(monotonicNs() - wait_start,
                                     std::memory_order_relaxed);
    im.job = nullptr;
    error = im.first_error;
    im.first_error = nullptr;
  }
  const std::uint64_t region_ns = monotonicNs() - region_start;

  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("rt.pool.regions").add(1);
    reg.counter("rt.pool.tasks").add(totalStats().tasks - tasks_before);
    reg.counter("rt.pool.steals").add(totalStats().steals - steals_before);
    LOCWM_OBS_HISTOGRAM("rt.pool.region_ns", region_ns);
    publishStats(laneStats(), im.lanes);
  }

  if (error) {
    std::rethrow_exception(error);
  }
}

std::vector<LaneStats> Pool::laneStats() const {
  std::vector<LaneStats> out(impl_->lanes);
  for (std::size_t l = 0; l < impl_->lanes; ++l) {
    const Impl::LaneCounters& c = impl_->counters[l];
    out[l].tasks = c.tasks.load(std::memory_order_relaxed);
    out[l].steals = c.steals.load(std::memory_order_relaxed);
    out[l].steal_fails = c.steal_fails.load(std::memory_order_relaxed);
    out[l].parks = c.parks.load(std::memory_order_relaxed);
    out[l].idle_ns = c.idle_ns.load(std::memory_order_relaxed);
    out[l].busy_ns = c.busy_ns.load(std::memory_order_relaxed);
  }
  return out;
}

LaneStats Pool::totalStats() const {
  LaneStats total;
  for (const LaneStats& l : laneStats()) {
    total.tasks += l.tasks;
    total.steals += l.steals;
    total.steal_fails += l.steal_fails;
    total.parks += l.parks;
    total.idle_ns += l.idle_ns;
    total.busy_ns += l.busy_ns;
  }
  return total;
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<Pool> g_pool;       // guarded by g_pool_mutex
std::size_t g_explicit_lanes = 0;   // guarded by g_pool_mutex

std::size_t resolveLanesLocked() noexcept {
  if (g_explicit_lanes != 0) {
    return clampLanes(g_explicit_lanes);
  }
  const std::size_t env = envThreads();
  return clampLanes(env != 0 ? env : hardwareThreads());
}

}  // namespace

std::size_t threadCount() {
  const std::lock_guard<std::mutex> lock(g_pool_mutex);
  return resolveLanesLocked();
}

void setThreadCount(std::size_t n) {
  const std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_explicit_lanes = n;
  const std::size_t want = resolveLanesLocked();
  if (g_pool && g_pool->lanes() != want) {
    g_pool.reset();  // rebuilt lazily by the next global() call
  }
}

Pool& Pool::global() {
  const std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    g_pool = std::make_unique<Pool>(resolveLanesLocked());
  }
  return *g_pool;
}

void publishPoolMetrics() {
  if (!obs::enabled()) {
    return;
  }
  Pool& pool = Pool::global();
  publishStats(pool.laneStats(), pool.lanes());
}

}  // namespace locwm::rt
