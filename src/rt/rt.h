// locwm::rt — a small deterministic work-stealing parallel runtime.
//
// The watermarking protocol is embarrassingly parallel in several places:
// detection re-derives a locality at every candidate root, Pc aggregates
// per-constraint probabilities, the Monte-Carlo benches run independent
// trials, and the dataflow closure unions independent bit-matrix rows.
// rt executes those loops on a fixed-size thread pool while keeping one
// hard promise: **thread count never changes output**.
//
// The determinism contract has three legs:
//
//  1. Chunk boundaries are a pure function of the iteration range and the
//     grain — never of the thread count.  Work *placement* varies run to
//     run (that is what stealing is for); work *partitioning* does not.
//  2. parallel_reduce combines per-chunk partials serially in chunk-index
//     order, so floating-point rounding is identical for 1, 2, or 64
//     threads.
//  3. Randomized tasks draw from per-task PRNG substreams derived by
//     counter-splitting (cdfg::substreamSeed) instead of sharing one
//     sequentially-consumed stream.
//
// Pool sizing: setThreadCount() (the CLI's --threads) overrides the
// LOCWM_THREADS environment variable, which overrides
// hardware_concurrency.  A pool of one lane runs everything inline.
//
// Scheduling: chunks are split into one static contiguous block per lane;
// each lane claims chunks from its own block first and, once exhausted,
// drains the remaining blocks of other lanes ("static + stolen"
// chunking).  Tasks that throw abort the loop early; the first exception
// is rethrown on the calling thread.
//
// Nesting: a parallel region entered from inside a pool task runs inline
// serially on the calling lane — same chunk set, same results, no
// deadlock.
//
// Observability: per-lane counters (tasks run, chunks stolen, idle wait
// time) land in the obs registry under "rt.lane<i>.*" plus "rt.pool.*"
// totals.  Unlike every other counter in the codebase these are
// scheduling-dependent and therefore NOT reproducible across runs; see
// docs/PARALLELISM.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace locwm::rt {

/// Hardware thread count (>= 1 even when unknown).
[[nodiscard]] std::size_t hardwareThreads() noexcept;

/// Overrides the lane count of the global pool (0 restores the automatic
/// LOCWM_THREADS / hardware_concurrency resolution).  Destroys and lazily
/// rebuilds the global pool when the effective count changes, so call it
/// between parallel regions (CLI startup, test phases) — never from
/// inside a task.
void setThreadCount(std::size_t n);

/// The lane count the global pool has (or will be built with):
/// setThreadCount > LOCWM_THREADS > hardware_concurrency, clamped to
/// [1, 256].
[[nodiscard]] std::size_t threadCount();

/// Per-lane scheduling statistics (cumulative since pool construction).
struct LaneStats {
  std::uint64_t tasks = 0;        ///< chunks executed by this lane
  std::uint64_t steals = 0;       ///< chunks claimed from another lane's block
  std::uint64_t steal_fails = 0;  ///< victim blocks visited but found empty
  std::uint64_t parks = 0;        ///< times the lane parked waiting for work
  std::uint64_t idle_ns = 0;      ///< time spent waiting for work
  std::uint64_t busy_ns = 0;      ///< time spent inside parallel regions
};

/// Fixed-size work-stealing thread pool.  Lane 0 is the calling thread;
/// lanes 1..N-1 are worker threads parked on a condition variable
/// between parallel regions, so one pool serves many passes.
class Pool {
 public:
  explicit Pool(std::size_t lanes);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// The process-wide pool, built on first use with threadCount() lanes.
  static Pool& global();

  [[nodiscard]] std::size_t lanes() const noexcept;

  /// Executes fn(chunk, lane) for every chunk in [0, chunk_count),
  /// blocking until all chunks ran.  Rethrows the first task exception
  /// after the region quiesces.  Safe to call repeatedly; re-entrant
  /// calls run inline.
  void run(std::size_t chunk_count,
           const std::function<void(std::size_t, std::size_t)>& fn);

  /// Cumulative per-lane statistics (index 0 = the calling thread).
  [[nodiscard]] std::vector<LaneStats> laneStats() const;

  /// Sum of laneStats() tasks/steals — convenience for bench rows.
  [[nodiscard]] LaneStats totalStats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Grain (elements per chunk) used by parallel_reduce when the caller
/// does not pick one.  Part of the determinism contract: changing it
/// changes floating-point combine trees, so it is a named constant, not
/// a heuristic.
inline constexpr std::size_t kDefaultGrain = 256;

/// True while the current thread is executing inside a Pool task; used to
/// run nested parallel regions inline.
[[nodiscard]] bool inParallelRegion() noexcept;

/// Publishes the global pool's scheduling state into the obs registry
/// ("rt.lane<i>.*" gauges, "rt.pool.*" totals, per-lane utilization).
/// Pool::run() publishes after every non-inline region; exporters call
/// this before rendering so small runs whose loops all ran inline still
/// expose the (all-zero) lane gauges.  No-op when obs is disabled.
void publishPoolMetrics();

/// Element-wise parallel loop: fn(i) for every i in [begin, end).
/// `grain` elements per chunk; boundaries depend only on the range and
/// the grain.  fn must be safe to call concurrently for distinct i.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  if (end <= begin) {
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = (n + g - 1) / g;
  if (chunks <= 1 || inParallelRegion()) {
    for (std::size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }
  Pool::global().run(chunks, [&](std::size_t c, std::size_t) {
    const std::size_t lo = begin + c * g;
    const std::size_t hi = lo + g < end ? lo + g : end;
    for (std::size_t i = lo; i < hi; ++i) {
      fn(i);
    }
  });
}

/// Deterministic parallel reduction: acc = combine(acc, map(i)) over
/// [begin, end).  Each chunk accumulates left-to-right starting from
/// `identity`; chunk partials are combined serially in chunk-index order.
/// With the default grain the result is bit-identical for every thread
/// count (including 1), and identical to a serial left-to-right fold
/// whenever the range fits in one chunk.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end,
                                T identity, Map&& map, Combine&& combine,
                                std::size_t grain = kDefaultGrain) {
  if (end <= begin) {
    return identity;
  }
  const std::size_t n = end - begin;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = (n + g - 1) / g;
  if (chunks <= 1 || inParallelRegion()) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) {
      acc = combine(std::move(acc), map(i));
    }
    return acc;
  }
  std::vector<T> partials(chunks, identity);
  Pool::global().run(chunks, [&](std::size_t c, std::size_t) {
    const std::size_t lo = begin + c * g;
    const std::size_t hi = lo + g < end ? lo + g : end;
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) {
      acc = combine(std::move(acc), map(i));
    }
    partials[c] = std::move(acc);
  });
  T acc = identity;
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

/// Runs a small fixed set of independent tasks concurrently (rule packs,
/// paired enumerations).  Exceptions propagate like parallel_for's.
inline void parallel_invoke(std::initializer_list<std::function<void()>> fns) {
  std::vector<std::function<void()>> tasks(fns);
  parallel_for(0, tasks.size(), 1,
               [&](std::size_t i) { tasks[i](); });
}

}  // namespace locwm::rt
