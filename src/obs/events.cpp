#include "obs/events.h"

#if __has_include(<locwm/build_info.h>)
#include <locwm/build_info.h>
#endif
#ifndef LOCWM_GIT_DESCRIBE
#define LOCWM_GIT_DESCRIBE "unknown"
#endif
#ifndef LOCWM_BUILD_TYPE
#define LOCWM_BUILD_TYPE "unknown"
#endif

#include "obs/json.h"
#include "obs/metrics.h"

namespace locwm::obs {

namespace detail {
std::atomic<bool> g_event_log_active{false};
}  // namespace detail

EventLog& EventLog::instance() {
  static EventLog log;
  return log;
}

bool EventLog::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) {
    detail::g_event_log_active.store(false, std::memory_order_relaxed);
    return false;
  }
  seq_ = 0;
  last_counters_.clear();
  detail::g_event_log_active.store(true, std::memory_order_relaxed);
  emitLine(std::string("\"type\":\"meta\",\"tool\":\"locwm\"") +
           ",\"git_describe\":" + jsonString(LOCWM_GIT_DESCRIBE) +
           ",\"build_type\":" + jsonString(LOCWM_BUILD_TYPE));
  return true;
}

void EventLog::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  detail::g_event_log_active.store(false, std::memory_order_relaxed);
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
}

void EventLog::emitLine(const std::string& body) {
  // Caller holds mutex_ or is single-threaded through open(); every
  // public emit* takes the lock before calling here.
  if (out_ == nullptr) {
    return;
  }
  std::fprintf(out_, "{\"seq\":%llu,\"schema_version\":%d,%s}\n",
               static_cast<unsigned long long>(seq_++), kStatsSchemaVersion,
               body.c_str());
}

void EventLog::emitSpanBegin(const char* name, std::uint64_t start_ns,
                             std::uint32_t tid, std::uint32_t depth) {
  const std::lock_guard<std::mutex> lock(mutex_);
  emitLine("\"type\":\"span_begin\",\"name\":" + jsonString(name) +
           ",\"start_ns\":" + std::to_string(start_ns) +
           ",\"tid\":" + std::to_string(tid) +
           ",\"depth\":" + std::to_string(depth));
}

void EventLog::emitSpanEnd(const char* name, std::uint64_t start_ns,
                           std::uint64_t dur_ns, std::uint32_t tid,
                           std::uint32_t depth) {
  const std::lock_guard<std::mutex> lock(mutex_);
  emitLine("\"type\":\"span_end\",\"name\":" + jsonString(name) +
           ",\"start_ns\":" + std::to_string(start_ns) +
           ",\"dur_ns\":" + std::to_string(dur_ns) +
           ",\"tid\":" + std::to_string(tid) +
           ",\"depth\":" + std::to_string(depth));
}

void EventLog::emitMetricsSnapshot() {
  // Snapshot outside the log lock: the registry takes its own mutex.
  const auto samples =
      MetricsRegistry::instance().snapshot(/*nonzero_only=*/true);
  const auto histograms = MetricsRegistry::instance().histogramSnapshots();

  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : samples) {
    if (s.is_gauge) {
      emitLine("\"type\":\"gauge\",\"name\":" + jsonString(s.name) +
               ",\"value\":" + std::to_string(s.value));
      continue;
    }
    const std::uint64_t value = static_cast<std::uint64_t>(s.value);
    std::uint64_t& last = last_counters_[s.name];
    const std::uint64_t delta = value >= last ? value - last : value;
    last = value;
    emitLine("\"type\":\"counter\",\"name\":" + jsonString(s.name) +
             ",\"value\":" + std::to_string(value) +
             ",\"delta\":" + std::to_string(delta));
  }
  for (const auto& [name, snap] : histograms) {
    if (snap.count == 0) {
      continue;
    }
    emitLine("\"type\":\"histogram\",\"name\":" + jsonString(name) +
             ",\"count\":" + std::to_string(snap.count) +
             ",\"sum\":" + std::to_string(snap.sum) +
             ",\"max\":" + std::to_string(snap.max) +
             ",\"p50\":" + std::to_string(snap.p50()) +
             ",\"p90\":" + std::to_string(snap.p90()) +
             ",\"p95\":" + std::to_string(snap.p95()) +
             ",\"p99\":" + std::to_string(snap.p99()));
  }
}

}  // namespace locwm::obs
