#include "obs/metrics.h"

#include <fstream>

#include "obs/json.h"

namespace locwm::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void setEnabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return *it->second;
  }
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return *it->second;
  }
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return *it->second;
  }
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histogramSnapshots() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot(
    bool nonzero_only) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, c] : counters_) {
    const std::uint64_t v = c->value();
    if (nonzero_only && v == 0) {
      continue;
    }
    out.push_back(Sample{name, static_cast<std::int64_t>(v), false});
  }
  for (const auto& [name, g] : gauges_) {
    const std::int64_t v = g->value();
    if (nonzero_only && v == 0) {
      continue;
    }
    out.push_back(Sample{name, v, true});
  }
  return out;
}

std::string MetricsRegistry::snapshotJson() const {
  const std::vector<Sample> samples = snapshot();
  std::string json = "{\n  \"counters\": {";
  bool first = true;
  for (const Sample& s : samples) {
    if (s.is_gauge) {
      continue;
    }
    json += first ? "\n" : ",\n";
    first = false;
    json += "    " + jsonString(s.name) + ": " + std::to_string(s.value);
  }
  json += first ? "},\n" : "\n  },\n";
  json += "  \"gauges\": {";
  first = true;
  for (const Sample& s : samples) {
    if (!s.is_gauge) {
      continue;
    }
    json += first ? "\n" : ",\n";
    first = false;
    json += "    " + jsonString(s.name) + ": " + std::to_string(s.value);
  }
  json += first ? "},\n" : "\n  },\n";
  json += "  \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : histogramSnapshots()) {
    json += first ? "\n" : ",\n";
    first = false;
    // Keys inside each histogram object are in sorted order too.
    json += "    " + jsonString(name) + ": {\"count\": " +
            std::to_string(snap.count) +
            ", \"max\": " + std::to_string(snap.max) +
            ", \"p50\": " + std::to_string(snap.p50()) +
            ", \"p90\": " + std::to_string(snap.p90()) +
            ", \"p95\": " + std::to_string(snap.p95()) +
            ", \"p99\": " + std::to_string(snap.p99()) +
            ", \"sum\": " + std::to_string(snap.sum) + "}";
  }
  json += first ? "}\n" : "\n  }\n";
  json += "}\n";
  return json;
}

bool MetricsRegistry::writeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << snapshotJson();
  return static_cast<bool>(out);
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) {
    c->reset();
  }
  for (const auto& [name, g] : gauges_) {
    g->reset();
  }
  for (const auto& [name, h] : histograms_) {
    h->reset();
  }
}

}  // namespace locwm::obs
