#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"

namespace locwm::obs {

namespace {

/// Trace epoch: the steady-clock instant of the first nowNs() call.
/// Relative timestamps keep trace files small and diff-friendly.
std::chrono::steady_clock::time_point traceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// The innermost live span on this thread, for parent/child attribution.
thread_local ObsSpan* t_current_span = nullptr;
thread_local std::uint32_t t_depth = 0;

}  // namespace

std::uint32_t threadIndex() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::uint64_t nowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - traceEpoch())
          .count());
}

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer buffer;
  return buffer;
}

void TraceBuffer::record(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % kCapacity;
  }
  ++total_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

std::uint64_t TraceBuffer::totalRecorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t TraceBuffer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_ > kCapacity ? total_ - kCapacity : 0;
}

std::size_t TraceBuffer::bufferBytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.capacity() * sizeof(TraceEvent);
}

void TraceBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string TraceBuffer::chromeTraceJson() const {
  const std::vector<TraceEvent> evs = events();
  std::string json = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : evs) {
    if (!first) {
      json += ',';
    }
    first = false;
    // Chrome expects microseconds; keep sub-microsecond precision.
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":%s,\"cat\":\"pass\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                  "\"args\":{\"depth\":%u}}",
                  jsonString(e.name).c_str(),
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.tid, e.depth);
    json += buf;
  }
  json += "],\"displayTimeUnit\":\"ms\"}\n";
  return json;
}

bool TraceBuffer::writeChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  if (const std::uint64_t lost = dropped(); lost > 0) {
    std::fprintf(stderr,
                 "obs: trace ring dropped %llu event(s) (capacity %zu); "
                 "the Chrome trace is truncated to the newest spans\n",
                 static_cast<unsigned long long>(lost), kCapacity);
  }
  out << chromeTraceJson();
  return static_cast<bool>(out);
}

PassTimer& PassTimer::instance() {
  static PassTimer timer;
  return timer;
}

void PassTimer::record(const char* name, std::uint64_t total_ns,
                       std::uint64_t self_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stats_.find(std::string_view(name));
  PassStat& stat = it != stats_.end()
                       ? it->second
                       : stats_.emplace(name, PassStat{name, 0, 0, 0})
                             .first->second;
  ++stat.calls;
  stat.total_ns += total_ns;
  stat.self_ns += self_ns;
}

std::vector<PassStat> PassTimer::report() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PassStat> out;
  out.reserve(stats_.size());
  for (const auto& [name, stat] : stats_) {
    out.push_back(stat);
  }
  std::sort(out.begin(), out.end(), [](const PassStat& a, const PassStat& b) {
    if (a.total_ns != b.total_ns) {
      return a.total_ns > b.total_ns;
    }
    return a.name < b.name;
  });
  return out;
}

void PassTimer::printReport(std::FILE* out) const {
  const std::vector<PassStat> stats = report();
  std::fprintf(out, "%-40s %8s %12s %12s\n", "pass", "calls", "total ms",
               "self ms");
  for (const PassStat& s : stats) {
    std::fprintf(out, "%-40s %8llu %12.3f %12.3f\n", s.name.c_str(),
                 static_cast<unsigned long long>(s.calls),
                 static_cast<double>(s.total_ns) / 1e6,
                 static_cast<double>(s.self_ns) / 1e6);
  }
}

void PassTimer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.clear();
}

ObsSpan::ObsSpan(const char* name) noexcept : name_(name) {
  if (!enabled()) {
    return;
  }
  active_ = true;
  parent_ = t_current_span;
  t_current_span = this;
  ++t_depth;
  start_ns_ = nowNs();
  if (eventLogActive()) {
    EventLog::instance().emitSpanBegin(name_, start_ns_, threadIndex(),
                                       t_depth - 1);
  }
}

ObsSpan::~ObsSpan() {
  if (!active_) {
    return;
  }
  const std::uint64_t dur = nowNs() - start_ns_;
  t_current_span = parent_;
  const std::uint32_t depth = --t_depth;
  if (parent_ != nullptr) {
    parent_->child_ns_ += dur;
  }
  TraceBuffer::instance().record(
      TraceEvent{name_, start_ns_, dur, threadIndex(), depth});
  PassTimer::instance().record(name_, dur,
                               dur > child_ns_ ? dur - child_ns_ : 0);
  if (eventLogActive()) {
    EventLog::instance().emitSpanEnd(name_, start_ns_, dur, threadIndex(),
                                     depth);
  }
  // A closing top-level span is the natural boundary to refresh the
  // process-memory gauges so a streaming event log sees per-pass peaks.
  // Only when a log is attached: the registry's counter snapshots must
  // stay a pure function of the work performed (see the determinism
  // test), and RSS is anything but.
  if (depth == 0 && eventLogActive()) {
    sampleMemoryGauges();
  }
}

std::string statsJson() {
  const std::string metrics = MetricsRegistry::instance().snapshotJson();
  // Splice the remaining top-level keys into the metrics object: drop the
  // final "}\n".  Keys render in sorted order — counters, gauges,
  // histograms (from snapshotJson), then passes, schema_version, trace —
  // so two snapshots diff cleanly.
  std::string json = metrics.substr(0, metrics.rfind('}'));
  while (!json.empty() && (json.back() == '\n' || json.back() == ' ')) {
    json.pop_back();
  }
  json += ",\n  \"passes\": [";
  const std::vector<PassStat> stats = PassTimer::instance().report();
  bool first = true;
  for (const PassStat& s : stats) {
    json += first ? "\n" : ",\n";
    first = false;
    json += "    {\"calls\": " + std::to_string(s.calls) +
            ", \"name\": " + jsonString(s.name) +
            ", \"self_ms\": " +
            jsonNumber(static_cast<double>(s.self_ns) / 1e6) +
            ", \"total_ms\": " +
            jsonNumber(static_cast<double>(s.total_ns) / 1e6) + "}";
  }
  json += first ? "],\n" : "\n  ],\n";
  json += "  \"schema_version\": " + std::to_string(kStatsSchemaVersion) +
          ",\n";
  const TraceBuffer& buffer = TraceBuffer::instance();
  json += "  \"trace\": {\"buffer_bytes\": " +
          std::to_string(buffer.bufferBytes()) +
          ", \"dropped\": " + std::to_string(buffer.dropped()) +
          ", \"recorded\": " + std::to_string(buffer.totalRecorded()) +
          "}\n";
  json += "}\n";
  return json;
}

bool writeStatsJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << statsJson();
  return static_cast<bool>(out);
}

}  // namespace locwm::obs
