#include "obs/openmetrics.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace locwm::obs {

namespace {

/// One exposition family: its OpenMetrics type and its samples, keyed by
/// the rendered label block ("" or "{lane=\"3\"}") so samples sort
/// deterministically.
struct Family {
  const char* type = "gauge";
  std::map<std::string, std::string> samples;  // label block -> value
};

/// Legal OpenMetrics name: [a-zA-Z_:][a-zA-Z0-9_:]*.  Dots and anything
/// else illegal become underscores.
std::string sanitizeName(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Maps an internal dotted name to (family, label block).  The per-lane
/// rt metrics ("rt.lane<i>.<rest>") fold into one family with a lane
/// label; everything else is a plain `locwm_<dots-to-underscores>` name.
std::pair<std::string, std::string> familyOf(const std::string& name) {
  constexpr std::string_view kLanePrefix = "rt.lane";
  if (name.rfind(kLanePrefix, 0) == 0) {
    const std::size_t digits_begin = kLanePrefix.size();
    std::size_t digits_end = digits_begin;
    while (digits_end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[digits_end])) != 0) {
      ++digits_end;
    }
    if (digits_end > digits_begin && digits_end < name.size() &&
        name[digits_end] == '.') {
      const std::string lane = name.substr(digits_begin,
                                           digits_end - digits_begin);
      const std::string rest = name.substr(digits_end + 1);
      return {"locwm_rt_lane_" + sanitizeName(rest),
              "{lane=\"" + lane + "\"}"};
    }
  }
  return {"locwm_" + sanitizeName(name), ""};
}

std::string formatU64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

void sampleMemoryGauges() {
#if defined(__linux__)
  if (!enabled()) {
    return;
  }
  std::ifstream status("/proc/self/status");
  if (!status) {
    return;
  }
  auto& registry = MetricsRegistry::instance();
  std::string line;
  while (std::getline(status, line)) {
    const bool is_peak = line.rfind("VmHWM:", 0) == 0;
    const bool is_rss = line.rfind("VmRSS:", 0) == 0;
    if (!is_peak && !is_rss) {
      continue;
    }
    long long kib = 0;
    if (std::sscanf(line.c_str() + 6, "%lld", &kib) != 1) {
      continue;
    }
    if (is_peak) {
      registry.gauge("mem.peak_rss_kib").raiseTo(kib);
    } else {
      registry.gauge("mem.rss_kib").set(kib);
    }
  }
#endif
}

std::string renderOpenMetrics() {
  sampleMemoryGauges();

  std::map<std::string, Family> families;
  auto& registry = MetricsRegistry::instance();

  for (const auto& s : registry.snapshot(/*nonzero_only=*/false)) {
    auto [family, labels] = familyOf(s.name);
    Family& f = families[family];
    f.type = s.is_gauge ? "gauge" : "counter";
    f.samples[labels] = std::to_string(s.value);
  }

  // The trace ring is not a registry metric; synthesize its health
  // families so a scrape sees truncation.
  const TraceBuffer& buffer = TraceBuffer::instance();
  families["locwm_obs_trace_recorded"] =
      Family{"counter", {{"", formatU64(buffer.totalRecorded())}}};
  families["locwm_obs_trace_dropped"] =
      Family{"counter", {{"", formatU64(buffer.dropped())}}};
  families["locwm_obs_trace_buffer_bytes"] =
      Family{"gauge", {{"", formatU64(buffer.bufferBytes())}}};

  // Render every family into one text block, then emit the blocks in
  // sorted family-name order so scrapes diff cleanly.
  std::map<std::string, std::string> blocks;
  for (const auto& [family, f] : families) {
    std::string block = "# TYPE " + family + " " + f.type + "\n";
    for (const auto& [labels, value] : f.samples) {
      block += family + (f.type[0] == 'c' ? "_total" : "") + labels + " " +
               value + "\n";
    }
    blocks[family] = std::move(block);
  }

  // Histograms render as summary families with quantile labels, plus a
  // companion _max gauge (summaries cannot carry an exact max).
  for (const auto& [name, snap] : registry.histogramSnapshots()) {
    const std::string family = familyOf(name).first;
    std::string block = "# TYPE " + family + " summary\n";
    const std::pair<const char*, std::uint64_t> quantiles[] = {
        {"0.5", snap.p50()},
        {"0.9", snap.p90()},
        {"0.95", snap.p95()},
        {"0.99", snap.p99()},
    };
    for (const auto& [q, v] : quantiles) {
      block += family + "{quantile=\"" + q + "\"} " + formatU64(v) + "\n";
    }
    block += family + "_sum " + formatU64(snap.sum) + "\n";
    block += family + "_count " + formatU64(snap.count) + "\n";
    blocks[family] = std::move(block);
    blocks[family + "_max"] = "# TYPE " + family + "_max gauge\n" + family +
                              "_max " + formatU64(snap.max) + "\n";
  }

  std::string out;
  for (const auto& [family, block] : blocks) {
    out += block;
  }
  out += "# EOF\n";
  return out;
}

bool writeOpenMetrics(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << renderOpenMetrics();
  return static_cast<bool>(out);
}

}  // namespace locwm::obs
