// Minimal JSON string formatting shared by the observability exporters
// and the bench table writers.  Only what our exporters need: escaping,
// and locale-independent number formatting.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace locwm::obs {

/// Appends `text` to `out` as the *contents* of a JSON string (no quotes),
/// escaping the characters RFC 8259 requires.
inline void appendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// `text` as a quoted JSON string.
inline std::string jsonString(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  appendJsonEscaped(out, text);
  out += '"';
  return out;
}

/// A double as a JSON number ("null" for non-finite values, which JSON
/// cannot represent).
inline std::string jsonNumber(double value) {
  if (value != value || value > 1.7976931348623157e308 ||
      value < -1.7976931348623157e308) {
    return "null";
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace locwm::obs
