// Scoped pass tracing.
//
// ObsSpan is an RAII span over one pass invocation: construction stamps a
// monotonic clock, destruction records a completed event into a fixed-size
// thread-safe ring buffer and folds the duration into the per-pass
// aggregate (PassTimer).  Spans nest; a thread-local stack attributes
// child time to parents so the report can show self vs. total time.
//
// The buffer exports Chrome trace-event JSON ("traceEvents" array of
// "ph":"X" complete events) loadable in chrome://tracing or Perfetto.
//
// Cost model: with obs disabled at runtime the span constructor is one
// relaxed atomic load and a bool store — no clock read, no allocation.
// Compiled out entirely when LOCWM_OBS_ENABLED is 0 (see obs/obs.h).
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace locwm::obs {

/// One completed span.  `name` must be a string literal (or otherwise
/// outlive the buffer): spans are recorded on hot paths and must not copy.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< relative to the process trace epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;   ///< dense per-process thread index
  std::uint32_t depth = 0; ///< nesting depth at record time
};

/// Fixed-capacity ring of completed spans (oldest events overwritten).
class TraceBuffer {
 public:
  static constexpr std::size_t kCapacity = 1u << 16;

  static TraceBuffer& instance();

  void record(const TraceEvent& event);

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Events recorded since the last clear(), including overwritten ones.
  [[nodiscard]] std::uint64_t totalRecorded() const;

  /// Events overwritten (lost from the ring) since the last clear().
  /// Surfaced as the locwm_obs_trace_dropped_total counter and warned
  /// about on stderr by writeChromeTrace() — a truncated Chrome trace is
  /// never silent.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Bytes held by the ring buffer (capacity, not occupancy).
  [[nodiscard]] std::size_t bufferBytes() const;

  void clear();

  /// Chrome trace-event JSON (chrome://tracing, Perfetto "open trace").
  [[nodiscard]] std::string chromeTraceJson() const;
  bool writeChromeTrace(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// Wall-time aggregate of one span name.
struct PassStat {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;  ///< inclusive of children
  std::uint64_t self_ns = 0;   ///< total minus directly nested spans
};

/// Per-pass aggregate over all recorded spans (not subject to the ring
/// buffer's capacity — every span lands here).
class PassTimer {
 public:
  static PassTimer& instance();

  void record(const char* name, std::uint64_t total_ns,
              std::uint64_t self_ns);

  /// Aggregates sorted by descending total time.
  [[nodiscard]] std::vector<PassStat> report() const;

  /// Fixed-width human-readable report (the "--report" table).
  void printReport(std::FILE* out) const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PassStat, std::less<>> stats_;
};

class ObsSpan {
 public:
  explicit ObsSpan(const char* name) noexcept;
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  const char* name_;
  ObsSpan* parent_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  bool active_ = false;
};

/// Nanoseconds on the monotonic clock, relative to the process trace
/// epoch (first observability use).
[[nodiscard]] std::uint64_t nowNs() noexcept;

/// Dense per-process index of the calling thread, assigned on first use.
/// Shared by the Chrome-trace "tid" field, the histogram shard hash, and
/// the ndjson event log.
[[nodiscard]] std::uint32_t threadIndex() noexcept;

/// Writes the combined stats document — metric snapshot plus pass-timer
/// report — as one JSON object with keys in sorted order:
///   {"counters": {...}, "gauges": {...}, "histograms": {...},
///    "passes": [...], "schema_version": N, "trace": {...}}
/// Object keys render sorted at every level so two snapshots diff
/// cleanly; "schema_version" is kStatsSchemaVersion (metrics.h).
[[nodiscard]] std::string statsJson();
bool writeStatsJson(const std::string& path);

}  // namespace locwm::obs
