// Streaming log-linear histograms (HdrHistogram-style).
//
// A Histogram records non-negative integer values (typically durations in
// nanoseconds) into a fixed set of buckets whose width grows geometrically:
// each power-of-two octave is split into 16 linear sub-buckets, so every
// bucket bounds its values within 1/16 (6.25%) relative error.  Values at
// or above 2^kMaxValueBits land in one explicit overflow bucket; the exact
// observed maximum is tracked separately so the top quantiles never
// over-report past it.
//
// Recording is lock-free and wait-free: each writer thread hashes onto one
// of a small fixed set of shards and does two relaxed fetch_adds plus a
// CAS-max.  snapshot() merges the shards by summing per-bucket counts —
// addition is commutative, so the merged snapshot is a pure function of
// the multiset of recorded values: byte-identical for any thread count or
// interleaving (HistogramTest pins this at 1/2/8 threads).
//
// Quantile semantics: quantile(q) returns the upper bound of the bucket
// holding the q-th ranked value (a "no more than" estimate), clamped to
// the observed maximum.  p50/p90/p95/p99/max are the conventional cuts.
//
// Histograms register in MetricsRegistry next to counters and gauges (see
// metrics.h) and render into the --stats JSON, the OpenMetrics exposition
// (as a summary family with quantile labels), and the ndjson event log.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace locwm::obs {

/// Merged, immutable view of a Histogram at one instant.
struct HistogramSnapshot {
  std::uint64_t count = 0;  ///< total values recorded
  std::uint64_t sum = 0;    ///< sum of recorded values
  std::uint64_t max = 0;    ///< exact observed maximum (0 when empty)
  std::vector<std::uint64_t> buckets;  ///< dense per-bucket counts

  /// Upper bound of the bucket holding the ceil(q * count)-th value,
  /// clamped to `max`; 0 for an empty histogram.  q is clamped to [0, 1].
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] std::uint64_t p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }

  /// Compact deterministic text render ("count=... sum=... max=...
  /// p50=... buckets=[i:c,...]"), used by the determinism tests to compare
  /// snapshots byte-for-byte.
  [[nodiscard]] std::string render() const;
};

/// Fixed-bucket log-linear streaming histogram with sharded lock-free
/// recording.  See the file comment for the layout and the determinism
/// contract.
class Histogram {
 public:
  /// Linear sub-buckets per power-of-two octave (16 -> 6.25% bound error).
  static constexpr unsigned kSubBucketBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;
  /// Values at or above 2^kMaxValueBits (about 18 minutes in ns) fall into
  /// the overflow bucket.
  static constexpr unsigned kMaxValueBits = 40;
  /// Regular buckets: kSubBuckets for [0, kSubBuckets), then kSubBuckets
  /// per octave up to msb kMaxValueBits-1, plus one overflow bucket.
  static constexpr std::size_t kBucketCount =
      ((kMaxValueBits - kSubBucketBits) << kSubBucketBits) + kSubBuckets + 1;
  static constexpr std::size_t kOverflowBucket = kBucketCount - 1;
  /// Writer shards.  Threads hash onto shards by dense thread index, so
  /// up to kShards writers never contend on a cache line.
  static constexpr std::size_t kShards = 8;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one value.  Lock-free; safe from any thread.
  void record(std::uint64_t value) noexcept;

  /// Bucket index for `value` (kOverflowBucket for out-of-range values).
  [[nodiscard]] static std::size_t bucketIndex(std::uint64_t value) noexcept;

  /// Inclusive upper bound of bucket `index` (the largest value that maps
  /// to it).  The overflow bucket has no finite bound; it returns
  /// UINT64_MAX and quantile() clamps to the observed max instead.
  [[nodiscard]] static std::uint64_t bucketUpperBound(
      std::size_t index) noexcept;

  /// Merges all shards into one snapshot.  Deterministic: a pure function
  /// of the multiset of recorded values.
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Zeroes every shard.  Not atomic with respect to concurrent writers;
  /// callers quiesce recording first (same contract as Counter::reset).
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
  };

  Shard shards_[kShards];
};

/// RAII latency probe: construction stamps the monotonic clock,
/// destruction records the elapsed nanoseconds into `*histogram`.  Inert
/// when `histogram` is null or observability is disabled at construction
/// time.  Call sites go through LOCWM_OBS_LATENCY (obs/obs.h), which
/// passes null without touching the registry when obs is off.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram) noexcept;
  ~ScopedLatency();

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_ = nullptr;  ///< null when obs was disabled
  std::uint64_t start_ns_ = 0;
};

}  // namespace locwm::obs
