#include "obs/histogram.h"

#include <bit>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace locwm::obs {

std::size_t Histogram::bucketIndex(std::uint64_t value) noexcept {
  if (value < kSubBuckets) {
    return static_cast<std::size_t>(value);
  }
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(value));
  if (msb >= kMaxValueBits) {
    return kOverflowBucket;
  }
  // Octave `msb` contributes kSubBuckets buckets of width 2^(msb -
  // kSubBucketBits); the sub-bucket is the kSubBucketBits bits below the
  // leading one.
  const unsigned shift = msb - kSubBucketBits;
  const std::size_t sub =
      static_cast<std::size_t>((value >> shift) & (kSubBuckets - 1));
  return (static_cast<std::size_t>(msb - kSubBucketBits + 1)
          << kSubBucketBits) +
         sub;
}

std::uint64_t Histogram::bucketUpperBound(std::size_t index) noexcept {
  if (index >= kOverflowBucket) {
    return ~std::uint64_t{0};
  }
  if (index < kSubBuckets) {
    return static_cast<std::uint64_t>(index);
  }
  const unsigned octave =
      static_cast<unsigned>(index >> kSubBucketBits) + kSubBucketBits - 1;
  const std::uint64_t sub = index & (kSubBuckets - 1);
  const unsigned shift = octave - kSubBucketBits;
  // Lower bound of the bucket, plus the bucket width minus one.
  const std::uint64_t lo = (std::uint64_t{1} << octave) | (sub << shift);
  return lo + ((std::uint64_t{1} << shift) - 1);
}

void Histogram::record(std::uint64_t value) noexcept {
  Shard& shard = shards_[threadIndex() % kShards];
  shard.buckets[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = shard.max.load(std::memory_order_relaxed);
  while (cur < value && !shard.max.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBucketCount, 0);
  for (const Shard& shard : shards_) {
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    const std::uint64_t shard_max = shard.max.load(std::memory_order_relaxed);
    if (shard_max > snap.max) {
      snap.max = shard_max;
    }
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      const std::uint64_t c = shard.buckets[b].load(std::memory_order_relaxed);
      snap.buckets[b] += c;
      snap.count += c;
    }
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    shard.sum.store(0, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
    for (auto& b : shard.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count), with rank at least 1.
  const double scaled = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(scaled));
  if (rank == 0) {
    rank = 1;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      const std::uint64_t bound = Histogram::bucketUpperBound(b);
      return bound < max ? bound : max;
    }
  }
  return max;
}

std::string HistogramSnapshot::render() const {
  std::string out = "count=" + std::to_string(count) +
                    " sum=" + std::to_string(sum) +
                    " max=" + std::to_string(max) +
                    " p50=" + std::to_string(p50()) +
                    " p90=" + std::to_string(p90()) +
                    " p95=" + std::to_string(p95()) +
                    " p99=" + std::to_string(p99()) + " buckets=[";
  bool first = true;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    if (!first) {
      out += ',';
    }
    first = false;
    out += std::to_string(b) + ":" + std::to_string(buckets[b]);
  }
  out += ']';
  return out;
}

ScopedLatency::ScopedLatency(Histogram* histogram) noexcept {
  if (histogram == nullptr || !enabled()) {
    return;
  }
  histogram_ = histogram;
  start_ns_ = nowNs();
}

ScopedLatency::~ScopedLatency() {
  if (histogram_ != nullptr) {
    histogram_->record(nowNs() - start_ns_);
  }
}

}  // namespace locwm::obs
