// Process-local named counters and gauges.
//
// Counters record monotonically increasing event totals (nodes visited,
// backtracks, bytes drawn); gauges record levels (ready-queue peak).  All
// values are *algorithmic* — they count work the passes do, not time — so
// under a fixed author signature and seed they are bit-identical across
// runs, and tests can assert exact counts.
//
// The registry is the library's only global beyond the trace buffer: a
// lazily constructed singleton.  Registration takes a lock; updates are
// relaxed atomics.  Call sites go through the LOCWM_OBS_* macros in
// obs/obs.h, which cache the registered handle in a function-local static
// so steady-state cost is one predictable branch plus one atomic add.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace locwm::obs {

/// Version stamp of every machine-readable snapshot this library emits
/// (--stats JSON, bench --json rows, ndjson events).  Bump when a field
/// is renamed or its meaning changes; additions do not require a bump.
inline constexpr int kStatsSchemaVersion = 2;

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when observability is switched on at runtime.  One relaxed atomic
/// load; every macro checks this before touching the registry or clock.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the runtime gate.  Off by default: a process that never calls
/// setEnabled(true) records nothing and allocates nothing.
void setEnabled(bool on) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written / high-water level.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if it is higher (high-water mark).
  void raiseTo(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Name -> counter/gauge/histogram table.  Handles returned by
/// counter()/gauge()/histogram() stay valid for the life of the process
/// (values are never erased, only reset), so call sites may cache them.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct Sample {
    std::string name;
    std::int64_t value = 0;
    bool is_gauge = false;
  };

  /// All registered counters and gauges, sorted by name.  `nonzero_only`
  /// drops zero-valued entries so two runs compare equal regardless of
  /// which other call sites happened to register in between.
  [[nodiscard]] std::vector<Sample> snapshot(bool nonzero_only = false) const;

  /// Merged snapshots of every registered histogram, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
  histogramSnapshots() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with
  /// names sorted at every level.
  [[nodiscard]] std::string snapshotJson() const;

  /// Writes snapshotJson() to `path`.  Returns false on I/O failure.
  /// (writeStatsJson() in trace.h additionally includes pass timings.)
  bool writeJson(const std::string& path) const;

  /// Zeroes every value.  Names stay registered; handles stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace locwm::obs
