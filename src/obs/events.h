// Append-only structured event log (newline-delimited JSON).
//
// Where the Chrome trace is a bounded ring for humans and the --stats
// snapshot is one aggregate at exit, the event log is a *stream*: every
// span begin/end, counter delta, and histogram snapshot appends one JSON
// object per line, stamped with a monotonic per-process sequence number.
// A future `locwm serve` daemon emits the same stream per request; a
// consumer tails the file and orders events by "seq" alone.
//
// Line shapes (all lines carry "seq" and "schema_version"):
//   {"seq":N,"schema_version":2,"type":"meta","version":...,
//    "git_describe":...,"build_type":...}
//   {"seq":N,...,"type":"span_begin","name":...,"start_ns":...,
//    "tid":T,"depth":D}
//   {"seq":N,...,"type":"span_end","name":...,"start_ns":...,
//    "dur_ns":...,"tid":T,"depth":D}
//   {"seq":N,...,"type":"counter","name":...,"value":V,"delta":D}
//   {"seq":N,...,"type":"gauge","name":...,"value":V}
//   {"seq":N,...,"type":"histogram","name":...,"count":...,"sum":...,
//    "max":...,"p50":...,"p90":...,"p95":...,"p99":...}
//
// Counter lines report the value *and* the delta since the previous
// snapshot on this log, so a streaming consumer needs no state.  The
// writer holds one mutex per line; span emission is gated on the same
// runtime-enabled flag as every other obs primitive and costs nothing
// when no log is open.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace locwm::obs {

namespace detail {
extern std::atomic<bool> g_event_log_active;
}  // namespace detail

/// True when an event log is open; one relaxed load, checked by the span
/// hooks before formatting anything.
inline bool eventLogActive() noexcept {
  return detail::g_event_log_active.load(std::memory_order_relaxed);
}

class EventLog {
 public:
  static EventLog& instance();

  /// Opens (truncates) `path` and arms streaming; also writes the "meta"
  /// header line.  Returns false on I/O failure.  Implies nothing about
  /// obs::enabled(): callers arm both (the CLI's --events does).
  bool open(const std::string& path);

  /// Flushes and closes the log; further emissions are dropped.
  void close();

  void emitSpanBegin(const char* name, std::uint64_t start_ns,
                     std::uint32_t tid, std::uint32_t depth);
  void emitSpanEnd(const char* name, std::uint64_t start_ns,
                   std::uint64_t dur_ns, std::uint32_t tid,
                   std::uint32_t depth);

  /// Appends one line per nonzero counter (with its delta since the last
  /// snapshot on this log), per nonzero gauge, and per non-empty
  /// histogram, in sorted name order.
  void emitMetricsSnapshot();

 private:
  EventLog() = default;

  void emitLine(const std::string& body);  // wraps with seq + newline

  std::mutex mutex_;
  std::FILE* out_ = nullptr;
  std::uint64_t seq_ = 0;
  std::map<std::string, std::uint64_t> last_counters_;
};

}  // namespace locwm::obs
