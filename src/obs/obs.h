// locwm::obs — the instrumentation surface the passes use.
//
// All instrumentation in the library goes through these macros, never the
// classes directly, so one switch controls everything:
//
//   * Compile time: build with -DLOCWM_OBS_ENABLED=0 (CMake option
//     LOCWM_OBS=OFF) and every macro expands to nothing — zero overhead,
//     no obs symbols referenced from the passes.
//   * Runtime: obs::setEnabled(true) arms recording.  Until then each
//     macro costs a single relaxed atomic load (and spans skip the clock
//     read), and nothing is formatted, registered, or allocated.
//
// Naming conventions (see docs/OBSERVABILITY.md):
//   spans      "module.pass"            e.g. "sched.list"
//   counters   "module.pass.event"      e.g. "sched.bb.steps_explored"
//   gauges     "module.pass.level"      e.g. "sched.list.ready_peak"
//   histograms "module.pass.what_ns"    e.g. "check.lint.file_ns"
#pragma once

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef LOCWM_OBS_ENABLED
#define LOCWM_OBS_ENABLED 1
#endif

#if LOCWM_OBS_ENABLED

#define LOCWM_OBS_CONCAT_IMPL(a, b) a##b
#define LOCWM_OBS_CONCAT(a, b) LOCWM_OBS_CONCAT_IMPL(a, b)

/// Declares an RAII span covering the rest of the enclosing scope.
/// `name` must be a string literal.
#define LOCWM_OBS_SPAN(name) \
  const ::locwm::obs::ObsSpan LOCWM_OBS_CONCAT(locwm_obs_span_, __LINE__)(name)

/// Adds `delta` to the named counter.  The registry handle is resolved
/// once per call site and cached in a function-local static.
#define LOCWM_OBS_COUNT(name, delta)                                  \
  do {                                                                \
    if (::locwm::obs::enabled()) {                                    \
      static ::locwm::obs::Counter& locwm_obs_counter_ =              \
          ::locwm::obs::MetricsRegistry::instance().counter(name);    \
      locwm_obs_counter_.add(static_cast<std::uint64_t>(delta));      \
    }                                                                 \
  } while (0)

/// Raises the named gauge to `value` if higher (high-water mark).
#define LOCWM_OBS_GAUGE_MAX(name, value)                              \
  do {                                                                \
    if (::locwm::obs::enabled()) {                                    \
      static ::locwm::obs::Gauge& locwm_obs_gauge_ =                  \
          ::locwm::obs::MetricsRegistry::instance().gauge(name);      \
      locwm_obs_gauge_.raiseTo(static_cast<std::int64_t>(value));     \
    }                                                                 \
  } while (0)

/// Sets the named gauge to `value`.
#define LOCWM_OBS_GAUGE_SET(name, value)                              \
  do {                                                                \
    if (::locwm::obs::enabled()) {                                    \
      static ::locwm::obs::Gauge& locwm_obs_gauge_ =                  \
          ::locwm::obs::MetricsRegistry::instance().gauge(name);      \
      locwm_obs_gauge_.set(static_cast<std::int64_t>(value));         \
    }                                                                 \
  } while (0)

/// Records `value_ns` (or any uint64 magnitude) into the named histogram.
#define LOCWM_OBS_HISTOGRAM(name, value_ns)                            \
  do {                                                                 \
    if (::locwm::obs::enabled()) {                                     \
      static ::locwm::obs::Histogram& locwm_obs_hist_ =                \
          ::locwm::obs::MetricsRegistry::instance().histogram(name);   \
      locwm_obs_hist_.record(static_cast<std::uint64_t>(value_ns));    \
    }                                                                  \
  } while (0)

/// Declares an RAII latency probe: at scope exit the elapsed nanoseconds
/// are recorded into the named histogram.  `name` must be a string
/// literal; the histogram handle is resolved once per call site.
#define LOCWM_OBS_LATENCY(name)                                           \
  const ::locwm::obs::ScopedLatency LOCWM_OBS_CONCAT(locwm_obs_latency_,  \
                                                     __LINE__)(           \
      ::locwm::obs::enabled()                                             \
          ? &::locwm::obs::MetricsRegistry::instance().histogram(name)    \
          : nullptr)

#else  // !LOCWM_OBS_ENABLED

#define LOCWM_OBS_SPAN(name) static_cast<void>(0)
#define LOCWM_OBS_COUNT(name, delta) \
  do {                               \
    if (false) {                     \
      static_cast<void>(delta);      \
    }                                \
  } while (0)
#define LOCWM_OBS_GAUGE_MAX(name, value) \
  do {                                   \
    if (false) {                         \
      static_cast<void>(value);          \
    }                                    \
  } while (0)
#define LOCWM_OBS_GAUGE_SET(name, value) \
  do {                                   \
    if (false) {                         \
      static_cast<void>(value);          \
    }                                    \
  } while (0)
#define LOCWM_OBS_HISTOGRAM(name, value_ns) \
  do {                                      \
    if (false) {                            \
      static_cast<void>(value_ns);          \
    }                                       \
  } while (0)
#define LOCWM_OBS_LATENCY(name) static_cast<void>(0)

#endif  // LOCWM_OBS_ENABLED
