// OpenMetrics / Prometheus text exposition of the metrics registry.
//
// Every internal dotted metric name maps onto one stable OpenMetrics
// family name:
//
//   "sched.list.nodes_scheduled" -> locwm_sched_list_nodes_scheduled
//   "rt.lane3.steals"            -> locwm_rt_lane_steals{lane="3"}
//   "mem.peak_rss_kib"           -> locwm_mem_peak_rss_kib
//
// i.e. `locwm_<subsys>_<name>`, dots to underscores, with the per-lane rt
// metrics folded into one family carrying a `lane` label.  Counters
// render as counter families (samples carry the `_total` suffix the spec
// requires), gauges as gauge families, histograms as summary families
// with `quantile` labels (0.5 / 0.9 / 0.95 / 0.99) plus `_sum`/`_count`
// and a companion `<family>_max` gauge.  The exposition ends with the
// mandatory `# EOF` line; scripts/check_metrics.py validates all of this
// structurally in CI.
//
// The trace ring's health is synthesized into the exposition as
// locwm_obs_trace_recorded_total / locwm_obs_trace_dropped_total /
// locwm_obs_trace_buffer_bytes, so a scrape sees trace truncation even
// though the ring is not a registry metric.
#pragma once

#include <string>

namespace locwm::obs {

/// Renders the full registry (counters, gauges, histograms) plus the
/// trace-ring health metrics as OpenMetrics text.  Families are emitted
/// in sorted name order; within a family, samples in sorted label order.
[[nodiscard]] std::string renderOpenMetrics();

/// Writes renderOpenMetrics() to `path`.  Returns false on I/O failure.
bool writeOpenMetrics(const std::string& path);

/// Samples process memory into gauges: `mem.rss_kib` and `mem.peak_rss_kib`
/// from /proc/self/status (VmRSS / VmHWM).  No-op on platforms without
/// procfs or when obs is disabled.  Called at top-level span boundaries
/// and before every export so peak RSS is never stale.
void sampleMemoryGauges();

}  // namespace locwm::obs
